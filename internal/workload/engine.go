package workload

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"time"

	"repro/internal/dnswire"
	"repro/internal/obs"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// Model selects the arrival law driving each simulated client.
type Model uint8

const (
	// ModelClosed is a closed-loop client: it issues a query, consumes
	// the answer, thinks for an exponential pause, and repeats. Load
	// self-limits — a slow serving layer slows its own offered load.
	ModelClosed Model = iota
	// ModelOpen is an open-loop client: arrivals follow a Poisson
	// process regardless of completions, the law that models a large
	// independent population and can overload the serving layer.
	ModelOpen
)

// String renders the model in ParseModel form.
func (m Model) String() string {
	if m == ModelOpen {
		return "open"
	}
	return "closed"
}

// ParseModel parses "closed" or "open" (the -loadmodel flag values).
func ParseModel(s string) (Model, error) {
	switch s {
	case "closed", "":
		return ModelClosed, nil
	case "open":
		return ModelOpen, nil
	}
	return ModelClosed, fmt.Errorf("workload: unknown model %q (want closed or open)", s)
}

// Diurnal shapes the arrival rate over the day: the instantaneous rate
// is scaled by 1 + Amplitude·cos(2π·(tod−Peak)/24h), so load peaks at
// Peak (a time-of-day offset) and bottoms out twelve hours away.
type Diurnal struct {
	// Amplitude in [0, 0.95]; 0 disables the curve.
	Amplitude float64
	// Peak is the time-of-day of maximum load (e.g. 20h for an evening
	// peak).
	Peak time.Duration
}

// FlashCrowd is a scheduled load spike: for Duration starting At (an
// offset from engine start) every client's arrival rate is multiplied
// by Multiplier, and — when Domain is set — Fraction of the spike's
// domain draws are pinned to that one name, the thundering-herd shape
// that hammers a single cache entry.
type FlashCrowd struct {
	At         time.Duration
	Duration   time.Duration
	Multiplier float64
	// Domain must be a member of Config.Domains when set.
	Domain   string
	Fraction float64
}

// Config parameterises a workload engine run. The engine is a pure
// function of (Config, clock start, target): every knob feeds the
// deterministic event computation, none reads ambient state.
type Config struct {
	// Clients is the simulated stub population size.
	Clients int
	// Model selects closed-loop think-time or open-loop Poisson arrivals.
	Model Model
	// Seed drives every client's RNG stream.
	Seed int64
	// Domains is the popularity-ranked query universe (rank 0 the most
	// popular — a Tranco list slice in campaign use).
	Domains []string
	// ZipfS is the popularity exponent; 0 selects 1.0, the classic
	// DNS-trace value.
	ZipfS float64
	// OpenRate is the open-loop per-client mean arrival rate in
	// queries/second; 0 selects 0.1.
	OpenRate float64
	// Think is the closed-loop mean think time; 0 selects 10s.
	Think time.Duration
	// Duration bounds the simulated horizon. Zero is allowed only with
	// MaxQueries set.
	Duration time.Duration
	// MaxQueries, when positive, stops the run after that many queries —
	// the budget knob benchmark smoke runs use.
	MaxQueries int
	// StubTTL is each client's stub-cache entry lifetime. It is a fixed
	// configured value rather than the answer's TTL: answer TTLs depend
	// on fleet-cache aging, whose LRU residency is schedule-dependent
	// under concurrent scanner stages, and the engine's event stream
	// must stay a pure function of (seed, clock, config). 0 selects 60s.
	StubTTL time.Duration
	// StubSlots is the per-client direct-mapped stub-cache size; 0
	// selects 4.
	StubSlots int
	// Mix deals per-client protocol preferences across the population
	// (the dnscrypt-proxy-style per-stub preference). The zero Mix
	// leaves every client protocol-agnostic.
	Mix transport.Mix
	// Diurnal shapes the rate over the day; Crowds schedules spikes.
	Diurnal Diurnal
	Crowds  []FlashCrowd
	// Interval enables per-interval telemetry sampling (qps, stub
	// hit-rate, stale-serve) on the virtual clock; 0 disables.
	Interval time.Duration
	// QType is the query type clients issue; 0 selects TypeHTTPS, the
	// paper's record of interest.
	QType dnswire.Type
	// Recorder, when non-nil, receives flight-recorder markers for
	// scheduled load anomalies: workload.crowd.start / workload.crowd.end
	// at each flash crowd's boundaries. The markers are emitted from the
	// single-driver event loop at config-derived virtual times, so they
	// are stable (schedule-independent) events.
	Recorder *obs.Recorder
}

// withDefaults fills the zero-value knobs.
func (cfg Config) withDefaults() Config {
	if cfg.ZipfS == 0 {
		cfg.ZipfS = 1.0
	}
	if cfg.OpenRate == 0 {
		cfg.OpenRate = 0.1
	}
	if cfg.Think == 0 {
		cfg.Think = 10 * time.Second
	}
	if cfg.StubTTL == 0 {
		cfg.StubTTL = 60 * time.Second
	}
	if cfg.StubSlots == 0 {
		cfg.StubSlots = 4
	}
	if cfg.QType == 0 {
		cfg.QType = dnswire.TypeHTTPS
	}
	return cfg
}

// Exchanger is the serving-layer hook the engine drives — satisfied by
// *transport.Client and by any test double.
type Exchanger interface {
	Exchange(q *dnswire.Message) (*dnswire.Message, error)
}

// preferring is the optional protocol-preference fast path
// (*transport.Client implements it); targets without it serve
// protocol-agnostic clients only.
type preferring interface {
	ExchangePreferring(q *dnswire.Message, pref transport.Protocol) (*dnswire.Message, error)
}

// staleCounter is the optional stale-answer counter the engine deltas
// for its stale-serve telemetry.
type staleCounter interface{ StaleAnswers() uint64 }

// answerReuser is the optional answer-recycling toggle
// (*transport.Client implements it). The engine is the target's sole
// driver for the duration of Run and discards every answer before the
// next exchange, which is exactly the contract ReuseAnswers needs, so
// Run flips it on for the run and restores it after.
type answerReuser interface{ SetReuseAnswers(on bool) }

// chargeQuantum is the amortised clock-charging granularity: the
// engine's virtual clock moves in these steps instead of per event, so
// a million clients share O(horizon/quantum) clock mutations rather
// than paying one mutex-guarded Set each per query.
const chargeQuantum = 100 * time.Millisecond

// Summary is one engine run's totals.
type Summary struct {
	Clients        int
	Model          Model
	Queries        uint64
	StubHits       uint64
	FleetExchanges uint64
	StaleServed    uint64
	Errors         uint64
	// Virtual is the simulated span actually covered (shorter than
	// Config.Duration when MaxQueries capped the run).
	Virtual time.Duration
	// Digest fingerprints the full event stream — every (client, due,
	// rank, outcome) tuple in pop order — so tests can assert two runs
	// replayed identically without storing millions of events.
	Digest uint64
}

// Engine drives Config.Clients simulated stubs against a serving-layer
// target on the virtual clock. See the package documentation for the
// client model and the determinism contract.
type Engine struct {
	cfg    Config
	clock  *simnet.Clock
	target Exchanger
	prefTx preferring
	stale  staleCounter

	zipf  *zipfSampler
	names []string // canonical FQDN per rank, built once
	rngs  []rng
	prefs []transport.Protocol // nil: no preferences

	// Per-client direct-mapped stub caches in two flat arrays
	// (client*StubSlots + rank%StubSlots): the domain rank cached in the
	// slot and its expiry in unix nanoseconds.
	cacheDom []uint32
	cacheExp []int64

	heap *eventHeap
	q    *dnswire.Message // reused query message (ID/QNAME patched per event)

	start     int64 // unix nanos at Run start
	end       int64
	charged   int64 // clock high-water mark already Set
	lastDue   int64
	nextPoll  int64
	crowdRank []int32     // resolved Domains rank per crowd (-1: none)
	marks     []crowdMark // pending flash-crowd recorder markers, time-ordered

	queries   obs.Counter
	stubHits  obs.Counter
	exchanges obs.Counter
	errors    obs.Counter
	qps       *obs.Gauge
	hitRate   *obs.Gauge
	staleRate *obs.Gauge

	reg       *obs.Registry
	sampler   *obs.Sampler
	staleBase uint64
	// Interval deltas backing the per-interval gauges.
	intQueries, intHits, intStale uint64

	digest uint64
}

// fnvOffset/fnvPrime are the FNV-1a 64 parameters for the event digest.
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

// New validates cfg and builds an engine over clock and target. The
// alias table, client RNG streams, protocol preferences, and initial
// arrival schedule are all computed here, so Run is allocation-light.
func New(cfg Config, clock *simnet.Clock, target Exchanger) (*Engine, error) {
	cfg = cfg.withDefaults()
	if cfg.Clients <= 0 {
		return nil, fmt.Errorf("workload: Clients must be positive")
	}
	if len(cfg.Domains) == 0 {
		return nil, fmt.Errorf("workload: Domains must be non-empty")
	}
	if cfg.Duration <= 0 && cfg.MaxQueries <= 0 {
		return nil, fmt.Errorf("workload: need Duration or MaxQueries")
	}
	if cfg.Diurnal.Amplitude < 0 || cfg.Diurnal.Amplitude > 0.95 {
		return nil, fmt.Errorf("workload: Diurnal.Amplitude %v outside [0, 0.95]", cfg.Diurnal.Amplitude)
	}
	if clock == nil {
		return nil, fmt.Errorf("workload: nil clock")
	}
	if target == nil {
		return nil, fmt.Errorf("workload: nil target")
	}

	e := &Engine{
		cfg: cfg, clock: clock, target: target,
		zipf:     newZipfSampler(len(cfg.Domains), cfg.ZipfS),
		names:    make([]string, len(cfg.Domains)),
		rngs:     make([]rng, cfg.Clients),
		cacheDom: make([]uint32, cfg.Clients*cfg.StubSlots),
		cacheExp: make([]int64, cfg.Clients*cfg.StubSlots),
		heap:     newEventHeap(cfg.Clients),
		digest:   fnvOffset,
	}
	rankOf := make(map[string]uint32, len(cfg.Domains))
	for i, d := range cfg.Domains {
		e.names[i] = dnswire.CanonicalName(d)
		rankOf[e.names[i]] = uint32(i)
	}
	e.crowdRank = make([]int32, len(cfg.Crowds))
	for i, fc := range cfg.Crowds {
		e.crowdRank[i] = -1
		if fc.Multiplier <= 0 {
			return nil, fmt.Errorf("workload: crowd %d Multiplier must be positive", i)
		}
		if fc.Fraction < 0 || fc.Fraction > 1 {
			return nil, fmt.Errorf("workload: crowd %d Fraction %v outside [0, 1]", i, fc.Fraction)
		}
		if fc.Domain != "" {
			rank, ok := rankOf[dnswire.CanonicalName(fc.Domain)]
			if !ok {
				return nil, fmt.Errorf("workload: crowd %d domain %q not in Domains", i, fc.Domain)
			}
			e.crowdRank[i] = int32(rank)
		}
	}
	for i := range e.cacheDom {
		e.cacheDom[i] = emptySlot
	}
	for i := range e.rngs {
		e.rngs[i] = newRNG(cfg.Seed, uint32(i))
	}
	if cfg.Mix != (transport.Mix{}) {
		if pt, ok := target.(preferring); ok {
			e.prefTx = pt
			e.prefs = cfg.Mix.Assign(cfg.Clients)
		} else {
			return nil, fmt.Errorf("workload: Mix set but target has no ExchangePreferring")
		}
	}
	e.stale, _ = target.(staleCounter)
	e.q = dnswire.NewQuery(0, e.names[0], cfg.QType, false)
	e.bindMetrics()
	return e, nil
}

// emptySlot marks an unused stub-cache slot (no rank reaches 2^32−1).
const emptySlot = ^uint32(0)

// bindMetrics stands up the engine-owned registry: cumulative counters
// plus per-interval gauges the poll loop refreshes at each boundary.
// Everything here is a deterministic function of the event stream, so
// none of it is marked volatile and workload series survive the stable
// snapshot filter campaign samplers apply.
func (e *Engine) bindMetrics() {
	e.reg = obs.NewRegistry(e.clock)
	e.reg.RegisterCounter(&e.queries, "workload_queries_total")
	e.reg.RegisterCounter(&e.stubHits, "workload_stub_hits_total")
	e.reg.RegisterCounter(&e.exchanges, "workload_fleet_exchanges_total")
	e.reg.RegisterCounter(&e.errors, "workload_errors_total")
	if e.stale != nil {
		e.reg.RegisterCounterFunc(func() float64 {
			return float64(e.stale.StaleAnswers() - e.staleBase)
		}, "workload_stale_answers_total")
	}
	e.qps = e.reg.Gauge("workload_qps")
	e.hitRate = e.reg.Gauge("workload_stub_hit_rate")
	e.staleRate = e.reg.Gauge("workload_stale_rate")
}

// Registry exposes the engine's metrics registry (for drill reports).
func (e *Engine) Registry() *obs.Registry { return e.reg }

// Points returns the per-interval telemetry samples collected by Run
// (nil when Config.Interval is 0).
func (e *Engine) Points() []obs.Point { return e.sampler.Points() }

// rateFactor is the instantaneous arrival-rate multiplier at t (unix
// nanos): the diurnal curve times any active flash crowd.
func (e *Engine) rateFactor(t int64) float64 {
	f := 1.0
	if a := e.cfg.Diurnal.Amplitude; a > 0 {
		tod := time.Unix(0, t).UTC()
		day := float64(tod.Sub(tod.Truncate(24*time.Hour))) - float64(e.cfg.Diurnal.Peak)
		f = 1 + a*math.Cos(2*math.Pi*day/float64(24*time.Hour))
	}
	for _, fc := range e.cfg.Crowds {
		at := e.start + int64(fc.At)
		if t >= at && t < at+int64(fc.Duration) {
			f *= fc.Multiplier
		}
	}
	return f
}

// crowdPin returns the pinned domain rank when t falls inside a crowd
// that hammers one domain and the client's draw lands in its Fraction.
func (e *Engine) crowdPin(r *rng, t int64) (uint32, bool) {
	for i, fc := range e.cfg.Crowds {
		if e.crowdRank[i] < 0 {
			continue
		}
		at := e.start + int64(fc.At)
		if t >= at && t < at+int64(fc.Duration) && r.float64() <= fc.Fraction {
			return uint32(e.crowdRank[i]), true
		}
	}
	return 0, false
}

// gap draws the client's next inter-arrival span from due, scaled by
// the rate factor at due (a piecewise-thinning approximation of the
// non-homogeneous Poisson process — exact when the factor is constant
// over the gap, which the statistical tests verify at the configured
// tolerances).
func (e *Engine) gap(r *rng, due int64) int64 {
	var mean float64 // seconds
	if e.cfg.Model == ModelOpen {
		mean = 1 / e.cfg.OpenRate
	} else {
		mean = float64(e.cfg.Think) / float64(time.Second)
	}
	d := r.exp(mean / e.rateFactor(due))
	if d > 1e9 { // degenerate draw; cap far past any horizon
		d = 1e9
	}
	ns := int64(d * float64(time.Second))
	if ns < 1 {
		ns = 1
	}
	return ns
}

// setClock advances the shared virtual clock to t, monotonically: a
// live-clock target charging exchange latency may already have pushed
// the clock past t, and the clock must never step backwards under a
// cache that orders entries by time.
func (e *Engine) setClock(t int64) {
	if t <= e.charged {
		return
	}
	e.charged = t
	at := time.Unix(0, t).UTC()
	if at.After(e.clock.Now()) {
		e.clock.Set(at)
	}
}

// pollInterval closes out one telemetry interval ending at boundary:
// the clock moves to the boundary, the per-interval gauges are
// refreshed from the counter deltas, and the sampler takes its tick.
func (e *Engine) pollInterval(boundary int64) {
	e.setClock(boundary)
	sec := float64(e.cfg.Interval) / float64(time.Second)
	q := e.queries.Load()
	h := e.stubHits.Load()
	var st uint64
	if e.stale != nil {
		st = e.stale.StaleAnswers() - e.staleBase
	}
	dq := q - e.intQueries
	e.qps.Set(float64(dq) / sec)
	if dq > 0 {
		e.hitRate.Set(float64(h-e.intHits) / float64(dq))
		e.staleRate.Set(float64(st-e.intStale) / float64(dq))
	} else {
		e.hitRate.Set(0)
		e.staleRate.Set(0)
	}
	e.intQueries, e.intHits, e.intStale = q, h, st
	e.sampler.Poll()
}

// crowdMark is one pending flash-crowd boundary marker for the flight
// recorder.
type crowdMark struct {
	at    int64
	kind  string
	crowd int
}

// seedCrowdMarks computes the run's crowd boundary markers (start and
// end per configured crowd, time-ordered) once e.start is known.
func (e *Engine) seedCrowdMarks() {
	e.marks = e.marks[:0]
	if e.cfg.Recorder == nil {
		return
	}
	for i, fc := range e.cfg.Crowds {
		at := e.start + int64(fc.At)
		e.marks = append(e.marks,
			crowdMark{at: at, kind: "workload.crowd.start", crowd: i},
			crowdMark{at: at + int64(fc.Duration), kind: "workload.crowd.end", crowd: i})
	}
	sort.Slice(e.marks, func(i, j int) bool {
		if e.marks[i].at != e.marks[j].at {
			return e.marks[i].at < e.marks[j].at
		}
		return e.marks[i].kind < e.marks[j].kind
	})
}

// emitCrowdMarks flushes every pending marker due at or before t. The
// clock is advanced to each marker's boundary first so the recorded At
// is the crowd boundary itself, not the arrival that revealed it.
func (e *Engine) emitCrowdMarks(t int64) {
	for len(e.marks) > 0 && e.marks[0].at <= t {
		m := e.marks[0]
		e.marks = e.marks[1:]
		e.setClock(m.at)
		labels := []obs.Label{obs.L("crowd", strconv.Itoa(m.crowd))}
		if d := e.cfg.Crowds[m.crowd].Domain; d != "" {
			labels = append(labels, obs.L("domain", dnswire.CanonicalName(d)))
		}
		e.cfg.Recorder.Emit(m.kind, labels...)
	}
}

// digestEvent folds one processed event into the stream fingerprint.
func (e *Engine) digestEvent(client uint32, due int64, rank uint32, outcome byte) {
	h := e.digest
	for i := 0; i < 32; i += 8 {
		h = (h ^ uint64(byte(client>>i))) * fnvPrime
	}
	for i := 0; i < 64; i += 8 {
		h = (h ^ uint64(byte(uint64(due)>>i))) * fnvPrime
	}
	for i := 0; i < 32; i += 8 {
		h = (h ^ uint64(byte(rank>>i))) * fnvPrime
	}
	e.digest = (h ^ uint64(outcome)) * fnvPrime
}

// Event outcomes folded into the digest.
const (
	outcomeStubHit byte = iota
	outcomeAnswered
	outcomeError
)

// process serves one arrival: draw the domain, probe the client's stub
// cache, and on a miss exchange through the serving layer and fill the
// slot. Returns the outcome for the digest.
func (e *Engine) process(ev event) byte {
	r := &e.rngs[ev.client]
	rank, pinned := e.crowdPin(r, ev.due)
	if !pinned {
		rank = e.zipf.draw(r)
	}
	e.queries.Add(1)
	slot := int(ev.client)*e.cfg.StubSlots + int(rank)%e.cfg.StubSlots
	if e.cacheDom[slot] == rank && e.cacheExp[slot] >= ev.due {
		e.stubHits.Add(1)
		e.digestEvent(ev.client, ev.due, rank, outcomeStubHit)
		return outcomeStubHit
	}
	// Amortised clock charge: the fleet sees time in chargeQuantum steps.
	e.setClock(ev.due - ev.due%int64(chargeQuantum))
	e.q.ID = uint16(e.queries.Load())
	e.q.Question[0].Name = e.names[rank]
	var err error
	if e.prefs != nil {
		_, err = e.prefTx.ExchangePreferring(e.q, e.prefs[ev.client])
	} else {
		_, err = e.target.Exchange(e.q)
	}
	e.exchanges.Add(1)
	outcome := outcomeAnswered
	if err != nil {
		e.errors.Add(1)
		outcome = outcomeError
	} else {
		e.cacheDom[slot] = rank
		e.cacheExp[slot] = ev.due + int64(e.cfg.StubTTL)
	}
	e.digestEvent(ev.client, ev.due, rank, outcome)
	return outcome
}

// Run drives the population from the clock's current time until the
// configured horizon (or query budget) and returns the totals. It is
// single-goroutine by construction: determinism comes from the total
// event order, not from locking. Safe to call once per engine.
func (e *Engine) Run() Summary {
	e.start = e.clock.Now().UnixNano()
	e.charged = e.start
	e.lastDue = e.start
	if e.cfg.Duration > 0 {
		e.end = e.start + int64(e.cfg.Duration)
	} else {
		e.end = math.MaxInt64
	}
	if e.stale != nil {
		e.staleBase = e.stale.StaleAnswers()
	}
	// The engine is the target's sole driver until Run returns and never
	// reads an answer after the next exchange starts, so the client may
	// recycle answer messages between events.
	if ru, ok := e.target.(answerReuser); ok {
		ru.SetReuseAnswers(true)
		defer ru.SetReuseAnswers(false)
	}
	e.sampler = obs.NewSampler(e.reg, e.clock, e.cfg.Interval, true)
	if e.cfg.Interval > 0 {
		e.nextPoll = e.start + int64(e.cfg.Interval)
	}

	e.seedCrowdMarks()

	// Seed every client's first arrival.
	for i := 0; i < e.cfg.Clients; i++ {
		e.heap.Push(event{due: e.start + e.gap(&e.rngs[i], e.start), client: uint32(i)})
	}

	for {
		if e.cfg.MaxQueries > 0 && e.queries.Load() >= uint64(e.cfg.MaxQueries) {
			break
		}
		ev, ok := e.heap.Pop()
		if !ok || ev.due >= e.end {
			break
		}
		for e.nextPoll > 0 && ev.due >= e.nextPoll {
			e.pollInterval(e.nextPoll)
			e.nextPoll += int64(e.cfg.Interval)
		}
		e.emitCrowdMarks(ev.due)
		e.process(ev)
		e.lastDue = ev.due
		e.heap.Push(event{due: ev.due + e.gap(&e.rngs[ev.client], ev.due), client: ev.client})
	}

	if e.cfg.Duration > 0 {
		// Close out the horizon: remaining interval ticks, then the end.
		for e.nextPoll > 0 && e.nextPoll <= e.end {
			e.pollInterval(e.nextPoll)
			e.nextPoll += int64(e.cfg.Interval)
		}
		e.emitCrowdMarks(e.end)
		e.setClock(e.end)
		e.lastDue = e.end
	}
	e.sampler.Force("end")
	return e.summary()
}

// summary assembles the run totals.
func (e *Engine) summary() Summary {
	var stale uint64
	if e.stale != nil {
		stale = e.stale.StaleAnswers() - e.staleBase
	}
	return Summary{
		Clients:        e.cfg.Clients,
		Model:          e.cfg.Model,
		Queries:        e.queries.Load(),
		StubHits:       e.stubHits.Load(),
		FleetExchanges: e.exchanges.Load(),
		StaleServed:    stale,
		Errors:         e.errors.Load(),
		Virtual:        time.Duration(e.lastDue - e.start),
		Digest:         e.digest,
	}
}

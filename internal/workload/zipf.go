package workload

import "math"

// zipfSampler draws ranks from a Zipf(s) popularity law over n ranks
// (rank 0 the most popular) in O(1) per draw via Walker's alias method.
// Building the table is O(n) once per engine; after that a draw costs
// one uniform index, one uniform threshold, and one table probe — no
// binary search over a CDF, which is what keeps a million clients'
// domain draws off the engine's critical path.
type zipfSampler struct {
	prob  []float64 // acceptance threshold per column
	alias []uint32  // fallback rank per column
}

// newZipfSampler builds the alias table for rank weights 1/(i+1)^s.
func newZipfSampler(n int, s float64) *zipfSampler {
	if n < 1 {
		n = 1
	}
	weights := make([]float64, n)
	var total float64
	for i := range weights {
		weights[i] = math.Pow(float64(i+1), -s)
		total += weights[i]
	}
	z := &zipfSampler{prob: make([]float64, n), alias: make([]uint32, n)}
	// Walker/Vose construction: scale weights to mean 1, then pair each
	// under-full column with an over-full donor.
	scaled := weights // reuse; weights is not needed past this point
	for i := range scaled {
		scaled[i] = scaled[i] * float64(n) / total
	}
	small := make([]uint32, 0, n)
	large := make([]uint32, 0, n)
	for i, w := range scaled {
		if w < 1 {
			small = append(small, uint32(i))
		} else {
			large = append(large, uint32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		z.prob[s] = scaled[s]
		z.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Float rounding leaves stragglers in one list; they are full columns.
	for _, i := range large {
		z.prob[i] = 1
		z.alias[i] = i
	}
	for _, i := range small {
		z.prob[i] = 1
		z.alias[i] = i
	}
	return z
}

// draw returns a rank in [0, n) distributed Zipf(s), consuming exactly
// one 64-bit value from the client's stream (index from the high bits,
// threshold from the full mantissa of a second mix) so draw sequences
// stay aligned across engine versions.
func (z *zipfSampler) draw(r *rng) uint32 {
	v := r.next()
	n := uint64(len(z.prob))
	col := uint32((uint64(uint32(v)) * n) >> 32)
	u := float64(mix64(v)>>11+1) / (1 << 53)
	if u <= z.prob[col] {
		return col
	}
	return z.alias[col]
}

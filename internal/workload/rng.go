package workload

import "math"

// rng is a splitmix64 stream: one uint64 of state per simulated client,
// so a million clients carry a million independent, seekable random
// streams in 8 MB. splitmix64 passes BigCrush, never needs warmup, and —
// unlike a shared math/rand source — keeps every client's draw sequence
// a pure function of (engine seed, client ID), independent of the order
// clients happen to fire in.
type rng struct{ state uint64 }

// golden is the splitmix64 increment (2^64 / phi).
const golden = 0x9e3779b97f4a7c15

// newRNG derives client id's stream from the engine seed. The double
// mix keeps adjacent client IDs uncorrelated.
func newRNG(seed int64, id uint32) rng {
	r := rng{state: uint64(seed) ^ mix64(uint64(id)*golden+golden)}
	return r
}

// mix64 is the splitmix64 output function.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// next returns the stream's next 64 uniform bits.
func (r *rng) next() uint64 {
	r.state += golden
	return mix64(r.state)
}

// float64 returns a uniform draw in (0, 1] — the open-at-zero side
// matters because exp() takes its logarithm.
func (r *rng) float64() float64 {
	return float64(r.next()>>11+1) / (1 << 53)
}

// exp returns an exponential draw with the given mean, the inter-arrival
// law of a Poisson process.
func (r *rng) exp(mean float64) float64 {
	return -mean * math.Log(r.float64())
}

// intn returns a uniform draw in [0, n) for n > 0.
func (r *rng) intn(n int) int {
	// Lemire's multiply-shift reduction; the tiny modulo bias is far
	// below anything the statistical tests can resolve.
	return int((uint64(uint32(r.next())) * uint64(n)) >> 32)
}

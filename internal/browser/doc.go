// Package browser models how the four major web browsers handle DNS HTTPS
// records and ECH, as measured in the paper's §5 experiments (Tables 6 and
// 7). Each model implements the same navigation machinery — HTTPS-RR
// lookup, parameter resolution, address/port selection, ECH offering, and
// failover — parameterised by a Behavior profile transcribed from the
// paper's observations. The lab harness then *measures* the support
// matrices from these mechanisms rather than hard-coding them.
package browser

package browser

// Behavior captures one browser's HTTPS-RR and ECH handling policy.
type Behavior struct {
	Name    string
	Version string
	// RequiresDoH: the browser only issues HTTPS-RR queries over DoH
	// (Firefox). With a lab DoH stub configured (Lab.EnableDoH) those
	// queries ride a real transport frontend; without one the testbed's
	// resolver stands in for dns.google, as the paper's testbed did.
	RequiresDoH bool

	// UpgradesScheme: a fetched HTTPS record upgrades bare/http:// URLs
	// to HTTPS (Safari does not: it fetches but keeps port-80 HTTP).
	UpgradesScheme bool

	// FollowsAliasMode: AliasMode TargetName is chased with follow-up
	// A queries (only Safari).
	FollowsAliasMode bool
	// FollowsServiceTarget: ServiceMode TargetName is honoured (Safari,
	// Firefox); otherwise the browser connects to the owner's addresses.
	FollowsServiceTarget bool

	// UsesPort: the port SvcParam is used for the connection.
	UsesPort bool
	// PortFailover: retry on 443 when the advertised port fails.
	PortFailover bool

	// UsesIPHints: ipv4hint/ipv6hint addresses are considered at all.
	UsesIPHints bool
	// PrefersIPHints: hints are tried before A-record addresses.
	PrefersIPHints bool
	// AddrFailover: on a failed connection, the next candidate address
	// (hint vs A) is attempted.
	AddrFailover bool
	// DelayedAddrFailover marks Firefox's long wait before the retry
	// (behavioural annotation; the retry still happens).
	DelayedAddrFailover bool

	// UsesALPN: protocols from the alpn SvcParam are offered.
	UsesALPN bool
	// ALPNDualFallback: after connecting via h3, an h2 connection is
	// also attempted for compatibility (Firefox).
	ALPNDualFallback bool
	// IgnoresEmptyALPN: records with an empty alpn are disregarded
	// entirely (Chromium behaviour found in the code corroboration).
	IgnoresEmptyALPN bool

	// SupportsECH: the ech SvcParam is used to encrypt the ClientHello.
	SupportsECH bool
	// ECHMalformedFallback: an unparseable ECH config is ignored and a
	// standard TLS handshake proceeds (Firefox); otherwise hard failure.
	ECHMalformedFallback bool
	// ECHRetry: the server-provided retry configs are honoured.
	ECHRetry bool
	// ECHSplitModeRequery: the browser re-resolves the client-facing
	// server (public_name) and connects there (no browser implements
	// this; its absence causes the split-mode hard failure).
	ECHSplitModeRequery bool
}

// The four profiles measured in the paper (browser versions of Table 6).

// Chrome returns the Chrome 120 behaviour profile.
func Chrome() Behavior {
	return Behavior{
		Name: "Chrome", Version: "120.0.6099",
		UpgradesScheme:       true,
		FollowsAliasMode:     false,
		FollowsServiceTarget: false,
		UsesPort:             false,
		PortFailover:         false,
		UsesIPHints:          false,
		PrefersIPHints:       false,
		AddrFailover:         false,
		UsesALPN:             true,
		IgnoresEmptyALPN:     true,
		SupportsECH:          true,
		ECHMalformedFallback: false,
		ECHRetry:             true,
	}
}

// Edge returns the Edge 120 profile (Chromium-derived; measured
// separately in the paper, identical outcomes).
func Edge() Behavior {
	b := Chrome()
	b.Name, b.Version = "Edge", "120.0.2210"
	return b
}

// Safari returns the Safari 17.2.1 profile.
func Safari() Behavior {
	return Behavior{
		Name: "Safari", Version: "17.2.1",
		UpgradesScheme:       false,
		FollowsAliasMode:     true,
		FollowsServiceTarget: true,
		UsesPort:             true,
		PortFailover:         true,
		UsesIPHints:          true,
		PrefersIPHints:       true,
		AddrFailover:         true,
		UsesALPN:             true,
		SupportsECH:          false,
	}
}

// Firefox returns the Firefox 122 profile.
func Firefox() Behavior {
	return Behavior{
		Name: "Firefox", Version: "122.0.1",
		RequiresDoH:          true,
		UpgradesScheme:       true,
		FollowsAliasMode:     false,
		FollowsServiceTarget: true,
		UsesPort:             true,
		PortFailover:         true,
		UsesIPHints:          true,
		PrefersIPHints:       true,
		AddrFailover:         true,
		DelayedAddrFailover:  true,
		UsesALPN:             true,
		ALPNDualFallback:     true,
		SupportsECH:          true,
		ECHMalformedFallback: true,
		ECHRetry:             true,
	}
}

// All returns the four measured browsers in the paper's column order.
func All() []Behavior {
	return []Behavior{Chrome(), Safari(), Edge(), Firefox()}
}

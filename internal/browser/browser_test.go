package browser

import (
	"testing"
)

// expected transcribes the paper's Table 6 (support matrix).
// Chromium pair = Chrome & Edge.
var expectedTable6 = map[string]map[string]Support{
	"{apex}": {
		"Chrome": SupportFull, "Safari": SupportPartial, "Edge": SupportFull, "Firefox": SupportFull,
	},
	"http://{apex}": {
		"Chrome": SupportFull, "Safari": SupportPartial, "Edge": SupportFull, "Firefox": SupportFull,
	},
	"https://{apex}": {
		"Chrome": SupportFull, "Safari": SupportFull, "Edge": SupportFull, "Firefox": SupportFull,
	},
	"AliasMode TargetName": {
		"Chrome": SupportNone, "Safari": SupportFull, "Edge": SupportNone, "Firefox": SupportNone,
	},
	"ServiceMode TargetName": {
		"Chrome": SupportNone, "Safari": SupportFull, "Edge": SupportNone, "Firefox": SupportFull,
	},
	"port": {
		"Chrome": SupportNone, "Safari": SupportFull, "Edge": SupportNone, "Firefox": SupportFull,
	},
	"alpn": {
		"Chrome": SupportFull, "Safari": SupportFull, "Edge": SupportFull, "Firefox": SupportFull,
	},
	"IP hints": {
		"Chrome": SupportNone, "Safari": SupportFull, "Edge": SupportNone, "Firefox": SupportFull,
	},
}

// expectedTable7 transcribes the paper's Table 7 (ECH support and
// failover). Safari is excluded in the paper for lack of any ECH support.
var expectedTable7 = map[string]map[string]Support{
	"Shared Mode Support": {
		"Chrome": SupportFull, "Edge": SupportFull, "Firefox": SupportFull, "Safari": SupportNone,
	},
	"(1) Unilateral ECH": {
		"Chrome": SupportFull, "Edge": SupportFull, "Firefox": SupportFull,
	},
	"(2) Malformed ECH": {
		"Chrome": SupportNone, "Edge": SupportNone, "Firefox": SupportFull,
	},
	"(3) Mismatched key": {
		"Chrome": SupportFull, "Edge": SupportFull, "Firefox": SupportFull,
	},
	"Split Mode Support": {
		"Chrome": SupportNone, "Edge": SupportNone, "Firefox": SupportNone,
	},
}

func TestTable6Matrix(t *testing.T) {
	_, marks := RunMatrix("Table 6", Table6Scenarios(), All())
	for row, want := range expectedTable6 {
		got, ok := marks[row]
		if !ok {
			t.Errorf("scenario %q missing", row)
			continue
		}
		for browserName, wantMark := range want {
			if got[browserName] != wantMark {
				t.Errorf("Table 6 %q / %s = %v, paper says %v",
					row, browserName, got[browserName].Mark(), wantMark.Mark())
			}
		}
	}
}

func TestTable7Matrix(t *testing.T) {
	_, marks := RunMatrix("Table 7", Table7Scenarios(), All())
	for row, want := range expectedTable7 {
		got, ok := marks[row]
		if !ok {
			t.Errorf("scenario %q missing", row)
			continue
		}
		for browserName, wantMark := range want {
			if got[browserName] != wantMark {
				t.Errorf("Table 7 %q / %s = %v, paper says %v",
					row, browserName, got[browserName].Mark(), wantMark.Mark())
			}
		}
	}
}

func TestFailoverBehaviours(t *testing.T) {
	_, marks := RunMatrix("failover", FailoverScenarios(), All())
	// Port failover: server only on 443 while the record says 8443.
	// Chrome/Edge ignore the port parameter and dial 443 → success;
	// Safari/Firefox fail on 8443 then fall back to 443 → success.
	for _, b := range []string{"Chrome", "Safari", "Edge", "Firefox"} {
		if marks["port failover (server on 443 only)"][b] != SupportFull {
			t.Errorf("port failover (443 only): %s failed", b)
		}
	}
	// Hint-only server: Chrome/Edge hard-fail (they only use A records).
	hintOnly := marks["IP hint failover (server on hint addr only)"]
	for _, b := range []string{"Chrome", "Edge"} {
		if hintOnly[b] != SupportNone {
			t.Errorf("hint-only server: %s should hard-fail", b)
		}
	}
	for _, b := range []string{"Safari", "Firefox"} {
		if hintOnly[b] != SupportFull {
			t.Errorf("hint-only server: %s should connect via hint", b)
		}
	}
	// A-only server: Safari/Firefox fail over from the hint to A.
	aOnly := marks["IP hint failover (server on A addr only)"]
	for _, b := range []string{"Safari", "Firefox"} {
		if aOnly[b] != SupportFull {
			t.Errorf("A-only server: %s should fail over to the A address", b)
		}
	}
	for _, b := range []string{"Chrome", "Edge"} {
		if aOnly[b] != SupportFull {
			t.Errorf("A-only server: %s connects directly via A", b)
		}
	}
}

func TestSplitModeErrorCode(t *testing.T) {
	// The paper reports ERR_ECH_FALLBACK_CERTIFICATE_INVALID in
	// Chrome/Edge for split mode.
	scenarios := Table7Scenarios()
	var split Scenario
	for _, sc := range scenarios {
		if sc.Row == "Split Mode Support" {
			split = sc
		}
	}
	l := NewLab()
	split.Build(l)
	v := l.Visit(Chrome(), split.URL)
	if v.OK {
		t.Fatal("split mode unexpectedly succeeded")
	}
	if v.ErrCode != ErrECHFallbackCertInvalid {
		t.Errorf("error = %q, want %q", v.ErrCode, ErrECHFallbackCertInvalid)
	}
}

func TestCorrectClientWouldHandleSplitMode(t *testing.T) {
	// A hypothetical spec-complete client (re-resolving public_name)
	// succeeds in split mode — demonstrating the failure is a client
	// gap, not a server misconfiguration.
	scenarios := Table7Scenarios()
	var split Scenario
	for _, sc := range scenarios {
		if sc.Row == "Split Mode Support" {
			split = sc
		}
	}
	b := Firefox()
	b.Name = "SpecComplete"
	b.ECHSplitModeRequery = true
	l := NewLab()
	split.Build(l)
	v := l.Visit(b, split.URL)
	if !v.OK || !v.ECHUsed {
		t.Errorf("spec-complete client failed split mode: %v", v)
	}
	if v.ConnectedTo.Addr() != l.Web2 {
		t.Errorf("spec-complete client connected to %v, want client-facing %v",
			v.ConnectedTo.Addr(), l.Web2)
	}
}

func TestSafariNoECHOffered(t *testing.T) {
	scenarios := Table7Scenarios()
	l := NewLab()
	scenarios[0].Build(l)
	v := l.Visit(Safari(), "https://a.com")
	for _, a := range v.Attempts {
		if a.ECHOffered {
			t.Error("Safari offered ECH")
		}
	}
	if !v.OK {
		t.Errorf("Safari should still connect with standard TLS: %v", v)
	}
}

func TestVisitResultString(t *testing.T) {
	l := NewLab()
	basicSetup(l)
	v := l.Visit(Chrome(), "https://a.com")
	if v.String() == "" {
		t.Error("empty String()")
	}
}

func TestFirefoxDualALPNAnnotation(t *testing.T) {
	// Behaviour flags the paper text describes are present on the
	// profiles (used by documentation output).
	if !Firefox().ALPNDualFallback || !Firefox().DelayedAddrFailover || !Firefox().RequiresDoH {
		t.Error("Firefox profile missing behavioural annotations")
	}
	if Chrome().UsesIPHints || Edge().UsesPort {
		t.Error("Chromium profile wrongly supports hints/port")
	}
}

// TestFirefoxRoutesHTTPSOverDoHStub checks the lab's encrypted-transport
// config: with EnableDoH, a RequiresDoH browser (Firefox) sends its
// HTTPS-RR queries through the transport frontend — and still lands the
// same navigation outcome — while Chrome (no DoH requirement) keeps
// talking to the resolver directly.
func TestFirefoxRoutesHTTPSOverDoHStub(t *testing.T) {
	l := NewLab()
	Table6Scenarios()[2].Build(l) // https://a.com basic setup
	fl := l.EnableDoH()

	v := l.Visit(Firefox(), "https://a.com")
	if !v.OK || v.Scheme != "https" {
		t.Fatalf("Firefox visit over DoH failed: %+v", v)
	}
	served := fl.TotalStats().Served
	if served == 0 {
		t.Fatal("DoH frontend saw no HTTPS-RR traffic from Firefox")
	}

	// Chrome does not require DoH: the stub stays idle.
	v = l.Visit(Chrome(), "https://a.com")
	if !v.OK {
		t.Fatalf("Chrome visit failed: %+v", v)
	}
	if fl.TotalStats().Served != served {
		t.Error("non-DoH browser leaked queries into the DoH stub")
	}

	// A second Firefox visit is absorbed by the stub's answer cache.
	if _, err := fl.Client.Query("a.com", 65, false); err != nil {
		t.Fatalf("direct stub query failed: %v", err)
	}
	if fl.Cache.Stats().Hits == 0 {
		t.Error("lab DoH cache absorbed nothing across visits")
	}
}

// TestTable6MatrixUnchangedOverDoH re-runs the Table 6 scenarios with the
// DoH stub enabled for every lab: the encrypted transport must be
// invisible to the support matrix (the paper's Firefox column was
// measured with DoH configured).
func TestTable6MatrixUnchangedOverDoH(t *testing.T) {
	for _, sc := range Table6Scenarios() {
		l := NewLab()
		sc.Build(l)
		l.EnableDoH()
		v := l.Visit(Firefox(), sc.URL)
		got := sc.Classify(l, v)
		if want := expectedTable6[sc.Row]["Firefox"]; got != want {
			t.Errorf("%s: Firefox over DoH = %v, want %v", sc.Row, got, want)
		}
	}
}

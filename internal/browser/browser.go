package browser

import (
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"repro/internal/dnswire"
	"repro/internal/ech"
	"repro/internal/simnet"
	"repro/internal/tlssim"
)

// Error codes surfaced to the user, matching the paper's observations.
const (
	ErrNameNotResolved        = "ERR_NAME_NOT_RESOLVED"
	ErrConnectionRefused      = "ERR_CONNECTION_REFUSED"
	ErrConnectionClosed       = "ERR_CONNECTION_CLOSED"
	ErrCertCommonNameInvalid  = "ERR_CERT_COMMON_NAME_INVALID"
	ErrECHFallbackCertInvalid = "ERR_ECH_FALLBACK_CERTIFICATE_INVALID"
)

// DoHTransport is the encrypted-DNS stub a browser routes HTTPS-RR
// queries through when its behaviour requires DoH (transport.Client in
// practice; the interface matches scanner.Transport).
type DoHTransport interface {
	Exchange(q *dnswire.Message) (*dnswire.Message, error)
}

// Browser drives navigations with one behaviour profile over a simnet.
type Browser struct {
	B        Behavior
	Net      *simnet.Network
	Resolver netip.Addr
	// DoH, when non-nil and the behaviour sets RequiresDoH, carries the
	// browser's HTTPS-RR queries through an encrypted transport instead
	// of the bare resolver — Firefox's TRR wiring, where HTTPS records
	// are only fetched when DoH is configured. A/AAAA lookups keep using
	// the OS resolver path, as Firefox does outside TRR-only mode.
	DoH DoHTransport

	qid uint16
}

// New creates a browser instance using the resolver at resolverAddr.
func New(b Behavior, net *simnet.Network, resolverAddr netip.Addr) *Browser {
	return &Browser{B: b, Net: net, Resolver: resolverAddr}
}

// Attempt records one connection attempt.
type Attempt struct {
	Addr        netip.Addr
	Port        uint16
	SNI         string
	ALPN        []string
	ECHOffered  bool
	ECHAccepted bool
	Err         string
}

// VisitResult is the outcome of one navigation.
type VisitResult struct {
	URL          string
	QueriedHTTPS bool
	QueriedA     bool
	HTTPSRecords int
	// UsedHTTPSRR: the fetched records influenced the connection.
	UsedHTTPSRR bool
	// Scheme finally used ("http" or "https").
	Scheme   string
	Attempts []Attempt
	OK       bool
	ErrCode  string
	// ALPN negotiated on success.
	ALPN string
	// SNI is the effective (inner, for ECH) server name.
	SNI string
	// ECHUsed: the connection was established with an accepted ECH.
	ECHUsed bool
	// ConnectedTo is the final endpoint.
	ConnectedTo netip.AddrPort
	// FollowUpQueries lists extra DNS names the browser resolved
	// (TargetName chasing).
	FollowUpQueries []string
}

// --- DNS helpers ---

func (br *Browser) query(name string, t dnswire.Type) (*dnswire.Message, error) {
	br.qid++
	q := dnswire.NewQuery(br.qid, name, t, false)
	if br.DoH != nil && br.B.RequiresDoH && t == dnswire.TypeHTTPS {
		return br.DoH.Exchange(q)
	}
	return br.Net.QueryDNS(br.Resolver, q)
}

func (br *Browser) lookupA(name string) []netip.Addr {
	resp, err := br.query(name, dnswire.TypeA)
	if err != nil {
		return nil
	}
	var out []netip.Addr
	for _, rr := range resp.Answer {
		if a, ok := rr.Data.(*dnswire.AData); ok {
			out = append(out, a.Addr)
		}
	}
	return out
}

// httpsRecord is a decoded HTTPS record relevant to navigation.
type httpsRecord struct {
	Priority uint16
	Target   string
	ALPN     []string
	HasALPN  bool
	Port     uint16
	HasPort  bool
	V4Hints  []netip.Addr
	ECHRaw   []byte
}

func (br *Browser) lookupHTTPS(name string) []httpsRecord {
	resp, err := br.query(name, dnswire.TypeHTTPS)
	if err != nil {
		return nil
	}
	var out []httpsRecord
	for _, rr := range resp.Answer {
		data, ok := rr.Data.(*dnswire.SVCBData)
		if !ok || rr.Type != dnswire.TypeHTTPS {
			continue
		}
		rec := httpsRecord{Priority: data.Priority, Target: dnswire.CanonicalName(data.Target)}
		if data.Target == "." {
			rec.Target = "."
		}
		if alpn, ok := data.Params.ALPN(); ok {
			rec.ALPN, rec.HasALPN = alpn, true
		}
		if port, ok := data.Params.Port(); ok {
			rec.Port, rec.HasPort = port, true
		}
		if hints, ok := data.Params.IPv4Hints(); ok {
			rec.V4Hints = hints
		}
		if raw, ok := data.Params.ECH(); ok {
			rec.ECHRaw = raw
		}
		out = append(out, rec)
	}
	sort.SliceStable(out, func(i, j int) bool {
		// AliasMode (0) first per its special meaning; among ServiceMode
		// lower priority wins.
		return out[i].Priority < out[j].Priority
	})
	return out
}

// parseURL splits a navigation target into scheme and host.
func parseURL(url string) (scheme, host string) {
	switch {
	case strings.HasPrefix(url, "https://"):
		return "https", strings.TrimSuffix(strings.TrimPrefix(url, "https://"), "/")
	case strings.HasPrefix(url, "http://"):
		return "http", strings.TrimSuffix(strings.TrimPrefix(url, "http://"), "/")
	default:
		return "", strings.TrimSuffix(url, "/")
	}
}

// Navigate performs one navigation and reports everything observed.
func (br *Browser) Navigate(url string) *VisitResult {
	scheme, host := parseURL(url)
	host = dnswire.CanonicalName(host)
	res := &VisitResult{URL: url}

	// All four browsers issue both HTTPS and A queries up front (§5.1).
	recs := br.lookupHTTPS(host)
	res.QueriedHTTPS = true
	res.HTTPSRecords = len(recs)
	aAddrs := br.lookupA(host)
	res.QueriedA = true

	useHTTPS := scheme == "https"
	if !useHTTPS && len(recs) > 0 && br.B.UpgradesScheme {
		// The HTTPS record signals HTTPS support: upgrade.
		useHTTPS = true
		res.UsedHTTPSRR = true
	}
	if !useHTTPS {
		return br.plainHTTP(res, host, aAddrs)
	}
	res.Scheme = "https"
	if len(recs) == 0 {
		br.connectPlainTLS(res, host, aAddrs, nil)
		return res
	}
	res.UsedHTTPSRR = true

	// Chromium disregards records with an empty alpn parameter.
	if br.B.IgnoresEmptyALPN {
		kept := recs[:0]
		for _, r := range recs {
			if r.Priority == 0 || r.HasALPN {
				kept = append(kept, r)
			}
		}
		recs = kept
		if len(recs) == 0 {
			br.connectPlainTLS(res, host, aAddrs, nil)
			return res
		}
	}

	rec := recs[0]
	if rec.Priority == 0 {
		br.navigateAlias(res, host, rec, aAddrs)
		return res
	}
	br.navigateService(res, host, rec, aAddrs)
	return res
}

// plainHTTP models the legacy port-80 connection (Safari's behaviour for
// bare and http:// URLs even when HTTPS records exist).
func (br *Browser) plainHTTP(res *VisitResult, host string, addrs []netip.Addr) *VisitResult {
	res.Scheme = "http"
	if len(addrs) == 0 {
		res.ErrCode = ErrNameNotResolved
		return res
	}
	ap := netip.AddrPortFrom(addrs[0], 80)
	res.Attempts = append(res.Attempts, Attempt{Addr: addrs[0], Port: 80, SNI: host})
	if _, err := br.Net.Service(ap); err != nil {
		res.ErrCode = ErrConnectionRefused
		return res
	}
	res.OK = true
	res.ConnectedTo = ap
	res.SNI = host
	return res
}

// navigateAlias handles an AliasMode record.
func (br *Browser) navigateAlias(res *VisitResult, host string, rec httpsRecord, aAddrs []netip.Addr) {
	target := host
	addrs := aAddrs
	if br.B.FollowsAliasMode && rec.Target != "." && rec.Target != host {
		target = rec.Target
		res.FollowUpQueries = append(res.FollowUpQueries, target)
		addrs = br.lookupA(target)
	}
	br.connectPlainTLS(res, target, addrs, nil)
}

// navigateService handles a ServiceMode record with full parameter
// resolution per the behaviour profile.
func (br *Browser) navigateService(res *VisitResult, host string, rec httpsRecord, aAddrs []netip.Addr) {
	effHost := host
	effAddrs := aAddrs
	if rec.Target != "." && rec.Target != host && br.B.FollowsServiceTarget {
		effHost = rec.Target
		res.FollowUpQueries = append(res.FollowUpQueries, effHost)
		effAddrs = br.lookupA(effHost)
	}

	port := uint16(443)
	if rec.HasPort && br.B.UsesPort {
		port = rec.Port
	}

	// Candidate address order per hint policy.
	var candidates []netip.Addr
	switch {
	case br.B.UsesIPHints && br.B.PrefersIPHints:
		candidates = append(append([]netip.Addr(nil), rec.V4Hints...), effAddrs...)
	case br.B.UsesIPHints:
		candidates = append(append([]netip.Addr(nil), effAddrs...), rec.V4Hints...)
	default:
		candidates = effAddrs
	}
	candidates = dedupAddrs(candidates)
	if len(candidates) == 0 {
		res.ErrCode = ErrNameNotResolved
		return
	}
	if !br.B.AddrFailover {
		candidates = candidates[:1]
	}

	var alpn []string
	if br.B.UsesALPN && rec.HasALPN {
		alpn = append(alpn, rec.ALPN...)
	} else {
		alpn = []string{"h2", "http/1.1"}
	}

	// ECH preparation.
	var echCfg *ech.Config
	if len(rec.ECHRaw) > 0 && br.B.SupportsECH {
		configs, err := ech.UnmarshalList(rec.ECHRaw)
		var cfg ech.Config
		if err == nil {
			cfg, err = ech.SelectConfig(configs)
		}
		if err != nil {
			if !br.B.ECHMalformedFallback {
				// Chrome/Edge terminate after the initial SYN.
				res.Attempts = append(res.Attempts, Attempt{Addr: candidates[0], Port: port,
					SNI: effHost, Err: "malformed ECH config"})
				res.ErrCode = ErrConnectionClosed
				return
			}
			// Firefox proceeds with a standard handshake.
		} else {
			echCfg = &cfg
			if br.B.ECHSplitModeRequery && trimDot(cfg.PublicName) != trimDot(effHost) {
				// The correct (unimplemented) behaviour: resolve the
				// client-facing server and connect there.
				res.FollowUpQueries = append(res.FollowUpQueries, cfg.PublicName)
				if addrs := br.lookupA(cfg.PublicName); len(addrs) > 0 {
					candidates = addrs
				}
			}
		}
	}

	br.connectLoop(res, effHost, candidates, port, alpn, echCfg)

	// Port failover: retry on 443 when the advertised port failed.
	if !res.OK && res.ErrCode == ErrConnectionRefused && port != 443 && br.B.PortFailover {
		res.ErrCode = ""
		br.connectLoop(res, effHost, candidates, 443, alpn, echCfg)
	}
}

// connectPlainTLS dials without SvcParams.
func (br *Browser) connectPlainTLS(res *VisitResult, host string, addrs []netip.Addr, alpn []string) {
	if len(addrs) == 0 {
		res.ErrCode = ErrNameNotResolved
		return
	}
	if alpn == nil {
		alpn = []string{"h2", "http/1.1"}
	}
	if !br.B.AddrFailover && len(addrs) > 1 {
		addrs = addrs[:1]
	}
	br.connectLoop(res, host, addrs, 443, alpn, nil)
}

// connectLoop walks candidate addresses performing handshakes, applying the
// ECH retry and unilateral-fallback logic.
func (br *Browser) connectLoop(res *VisitResult, sni string, addrs []netip.Addr, port uint16, alpn []string, echCfg *ech.Config) {
	var lastErr string
	for _, addr := range addrs {
		ap := netip.AddrPortFrom(addr, port)
		hs, attempt, err := br.handshake(ap, sni, alpn, echCfg)
		res.Attempts = append(res.Attempts, attempt)
		if err != nil {
			lastErr = classifyDialErr(err)
			continue // address failover (loop bounded by caller policy)
		}
		br.finish(res, ap, sni, hs, echCfg)
		return
	}
	if res.ErrCode == "" {
		if lastErr == "" {
			lastErr = ErrConnectionRefused
		}
		res.ErrCode = lastErr
	}
}

// handshake performs one dial, handling ECH encryption.
func (br *Browser) handshake(ap netip.AddrPort, sni string, alpn []string, echCfg *ech.Config) (*tlssim.HandshakeResult, Attempt, error) {
	attempt := Attempt{Addr: ap.Addr(), Port: ap.Port(), SNI: sni, ALPN: alpn}
	var hello *tlssim.ClientHello
	if echCfg != nil {
		attempt.ECHOffered = true
		attempt.SNI = echCfg.PublicName // outer SNI
		var err error
		hello, err = tlssim.BuildECHHello(*echCfg, sni, alpn)
		if err != nil {
			return nil, attempt, err
		}
	} else {
		hello = &tlssim.ClientHello{SNI: sni, ALPN: alpn}
	}
	hs, err := tlssim.Dial(br.Net, ap, hello)
	if err != nil {
		attempt.Err = err.Error()
		return nil, attempt, err
	}
	attempt.ECHAccepted = hs.ECHAccepted
	return hs, attempt, nil
}

// finish evaluates a completed handshake: ECH retry/fallback and
// certificate validation.
func (br *Browser) finish(res *VisitResult, ap netip.AddrPort, sni string, hs *tlssim.HandshakeResult, echCfg *ech.Config) {
	if echCfg != nil && !hs.ECHAccepted {
		// Server could not use our ECH. Retry with fresh configs when
		// provided (the draft's retry mechanism).
		if len(hs.RetryConfigs) > 0 && br.B.ECHRetry {
			if configs, err := ech.UnmarshalList(hs.RetryConfigs); err == nil {
				if cfg, err := ech.SelectConfig(configs); err == nil {
					hs2, attempt, err := br.handshake(ap, sni, firstALPN(res), &cfg)
					res.Attempts = append(res.Attempts, attempt)
					if err == nil {
						br.finish(res, ap, sni, hs2, &cfg)
						return
					}
				}
			}
		}
		// No usable retry: ECH is "securely disabled" only when the
		// fallback certificate validates for the client-facing server
		// (public_name); then a standard handshake proceeds. Otherwise
		// the connection hard-fails — the split-mode outcome, since the
		// back-end's certificate does not cover the public name.
		if hs.CertMatches(echCfg.PublicName) {
			hs2, attempt, err := br.handshake(ap, sni, firstALPN(res), nil)
			res.Attempts = append(res.Attempts, attempt)
			if err == nil {
				br.finish(res, ap, sni, hs2, nil)
				return
			}
		}
		res.ErrCode = ErrECHFallbackCertInvalid
		return
	}
	if !hs.CertMatches(sni) {
		if echCfg != nil {
			res.ErrCode = ErrECHFallbackCertInvalid
		} else {
			res.ErrCode = ErrCertCommonNameInvalid
		}
		return
	}
	res.OK = true
	res.ErrCode = ""
	res.ConnectedTo = ap
	res.SNI = trimDot(sni)
	res.ALPN = hs.ALPN
	res.ECHUsed = hs.ECHAccepted
}

func firstALPN(res *VisitResult) []string {
	if len(res.Attempts) > 0 {
		return res.Attempts[len(res.Attempts)-1].ALPN
	}
	return nil
}

func classifyDialErr(err error) string {
	switch {
	case errors.Is(err, simnet.ErrUnreachable), errors.Is(err, simnet.ErrRefused),
		errors.Is(err, simnet.ErrNoService):
		return ErrConnectionRefused
	default:
		return ErrConnectionClosed
	}
}

func dedupAddrs(addrs []netip.Addr) []netip.Addr {
	seen := map[netip.Addr]bool{}
	out := addrs[:0]
	for _, a := range addrs {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

func trimDot(s string) string { return strings.TrimSuffix(s, ".") }

// String describes the visit tersely for logs.
func (v *VisitResult) String() string {
	status := "OK"
	if !v.OK {
		status = v.ErrCode
	}
	return fmt.Sprintf("%s → %s [%s] attempts=%d alpn=%q ech=%v",
		v.URL, v.Scheme, status, len(v.Attempts), v.ALPN, v.ECHUsed)
}

package browser

import (
	"math/rand"
	"net/netip"
	"time"

	"repro/internal/analysis"
	"repro/internal/authserver"
	"repro/internal/dnswire"
	"repro/internal/ech"
	"repro/internal/simnet"
	"repro/internal/svcb"
	"repro/internal/transport"
	"repro/internal/webserver"
	"repro/internal/zone"
)

// Support grades one browser's handling of one scenario, matching the
// paper's full/half/empty circles.
type Support int

// Support levels.
const (
	SupportNone Support = iota
	SupportPartial
	SupportFull
)

// Mark renders the paper's circle notation in ASCII.
func (s Support) Mark() string {
	switch s {
	case SupportFull:
		return "●"
	case SupportPartial:
		return "◐"
	default:
		return "○"
	}
}

// Lab is one instance of the §5 testbed: a controlled DNS zone (the paper's
// BIND9 on AWS), web endpoints (Nginx+OpenSSL ECH), and a resolver address
// the browser under test queries.
type Lab struct {
	Net      *simnet.Network
	Clock    *simnet.Clock
	Auth     *authserver.Server
	Resolver netip.Addr
	ZoneA    *zone.Zone // a.com
	ZoneB    *zone.Zone // b.com (split-mode client-facing)

	// Fixed testbed addresses.
	Web1, Web2, HintAddr netip.Addr

	// KM is the current ECH key manager; StaleKM generates configs the
	// web server no longer accepts (key-mismatch scenario).
	KM, StaleKM *ech.KeyManager

	// DoH, when set by EnableDoH, is the lab's encrypted-DNS stub config:
	// Visit hands its client to browsers whose behaviour requires DoH
	// (Firefox), so their HTTPS-RR queries ride a real transport frontend
	// instead of talking to the resolver directly — the Table 6 scenarios
	// over encrypted transport.
	DoH *transport.Fleet
}

// NewLab builds a fresh testbed.
func NewLab() *Lab {
	clock := simnet.NewClock(time.Date(2024, 2, 1, 0, 0, 0, 0, time.UTC))
	l := &Lab{
		Net:      simnet.New(clock),
		Clock:    clock,
		Auth:     authserver.New(),
		Resolver: netip.MustParseAddr("9.9.9.9"),
		Web1:     netip.MustParseAddr("10.99.0.1"),
		Web2:     netip.MustParseAddr("10.99.0.2"),
		HintAddr: netip.MustParseAddr("10.99.0.3"),
	}
	l.ZoneA = zone.New("a.com")
	l.ZoneA.SetSOA("ns1.a.com.", "hostmaster.a.com.", 1, 60)
	l.ZoneA.Add(dnswire.RR{Name: "a.com.", Type: dnswire.TypeNS, Class: dnswire.ClassINET,
		TTL: 3600, Data: &dnswire.NSData{Host: "ns1.a.com."}})
	l.ZoneB = zone.New("b.com")
	l.ZoneB.SetSOA("ns1.b.com.", "hostmaster.b.com.", 1, 60)
	l.ZoneB.Add(dnswire.RR{Name: "b.com.", Type: dnswire.TypeNS, Class: dnswire.ClassINET,
		TTL: 3600, Data: &dnswire.NSData{Host: "ns1.b.com."}})
	l.Auth.AddZone(l.ZoneA)
	l.Auth.AddZone(l.ZoneB)
	l.Net.RegisterDNS(l.Resolver, l.Auth)

	rng := rand.New(rand.NewSource(99))
	l.KM, _ = ech.NewKeyManager(rng, "cover.a.com", time.Hour, 2*time.Hour, clock.Now().Add(-time.Hour))
	l.StaleKM, _ = ech.NewKeyManager(rng, "cover.a.com", time.Hour, 2*time.Hour, clock.Now().Add(-time.Hour))
	return l
}

// A adds an A record to the appropriate zone.
func (l *Lab) A(name string, addr netip.Addr) {
	z := l.ZoneA
	if dnswire.IsSubdomain(name, "b.com.") {
		z = l.ZoneB
	}
	z.Add(dnswire.RR{Name: name, Type: dnswire.TypeA, Class: dnswire.ClassINET, TTL: 60,
		Data: &dnswire.AData{Addr: addr}})
}

// HTTPS adds an HTTPS record built from presentation-format params.
func (l *Lab) HTTPS(name string, priority uint16, target string, params svcb.Params) {
	z := l.ZoneA
	if dnswire.IsSubdomain(name, "b.com.") {
		z = l.ZoneB
	}
	z.Add(dnswire.RR{Name: name, Type: dnswire.TypeHTTPS, Class: dnswire.ClassINET, TTL: 60,
		Data: &dnswire.SVCBData{Priority: priority, Target: target, Params: params}})
}

// Endpoint registers a TLS endpoint.
func (l *Lab) Endpoint(addr netip.Addr, port uint16, ep *webserver.Endpoint) *webserver.Endpoint {
	ep.Clock = l.Clock
	ep.Register(l.Net, addr, port)
	return ep
}

// HTTPPort80 registers a plaintext endpoint so legacy HTTP connections
// succeed.
func (l *Lab) HTTPPort80(addr netip.Addr) {
	l.Net.RegisterService(netip.AddrPortFrom(addr, 80), &webserver.Endpoint{HTTPOnly: true})
}

// DoHAddr is the fixed address the lab's DoH stub frontend serves on.
var DoHAddr = netip.AddrPortFrom(netip.MustParseAddr("10.99.0.53"), 443)

// EnableDoH stands up the lab's encrypted-DNS stub config: one DoH
// frontend (the testbed's dns.google stand-in) wrapping the lab's
// authoritative resolver, with a small answer cache. Browsers with
// RequiresDoH route their HTTPS-RR queries through it on every
// subsequent Visit.
func (l *Lab) EnableDoH() *transport.Fleet {
	fl := transport.NewFleet(l.Net, l.Clock, transport.FleetConfig{
		Balance: transport.BalanceRoundRobin, Seed: 99,
		Cache: transport.CacheConfig{Shards: 2, ShardCapacity: 64},
	})
	fl.Add(transport.ProtoDoH, "lab-doh", l.Auth, DoHAddr)
	l.DoH = fl
	return fl
}

// Visit runs one browser against the lab (fresh browser per call — the
// paper clears caches between rounds).
func (l *Lab) Visit(b Behavior, url string) *VisitResult {
	br := New(b, l.Net, l.Resolver)
	if l.DoH != nil {
		br.DoH = l.DoH.Client
	}
	return br.Navigate(url)
}

// params is a tiny helper building svcb.Params.
func params(build func(ps *svcb.Params)) svcb.Params {
	var ps svcb.Params
	if build != nil {
		build(ps2(&ps))
	}
	return ps
}

func ps2(ps *svcb.Params) *svcb.Params { return ps }

// Scenario is one row of the support matrices.
type Scenario struct {
	Row string
	// URL to navigate (defaults to https://a.com).
	URL string
	// Build configures a fresh lab.
	Build func(l *Lab)
	// Classify grades the visit.
	Classify func(l *Lab, v *VisitResult) Support
}

// basicSetup is the §5.1 configuration: ServiceMode record, h2, one server.
func basicSetup(l *Lab) {
	l.HTTPS("a.com.", 1, ".", params(func(ps *svcb.Params) { _ = ps.SetALPN([]string{"h2"}) }))
	l.A("a.com.", l.Web1)
	l.Endpoint(l.Web1, 443, &webserver.Endpoint{CertNames: []string{"a.com"}, ALPN: []string{"h2"}})
	l.HTTPPort80(l.Web1)
}

func classifyUpgrade(_ *Lab, v *VisitResult) Support {
	switch {
	case v.OK && v.Scheme == "https":
		return SupportFull
	case v.QueriedHTTPS && v.OK && v.Scheme == "http":
		// Fetched the record but did not use it (Safari's half circle).
		return SupportPartial
	default:
		return SupportNone
	}
}

// Table6Scenarios returns the §5.1/§5.2 scenario list.
func Table6Scenarios() []Scenario {
	return []Scenario{
		{Row: "{apex}", URL: "a.com", Build: basicSetup, Classify: classifyUpgrade},
		{Row: "http://{apex}", URL: "http://a.com", Build: basicSetup, Classify: classifyUpgrade},
		{Row: "https://{apex}", URL: "https://a.com", Build: basicSetup, Classify: classifyUpgrade},
		{
			Row: "AliasMode TargetName", URL: "https://a.com",
			Build: func(l *Lab) {
				// a.com aliases to pool.a.com; a.com itself has no A.
				l.HTTPS("a.com.", 0, "pool.a.com.", nil)
				l.A("pool.a.com.", l.Web1)
				l.Endpoint(l.Web1, 443, &webserver.Endpoint{
					CertNames: []string{"a.com", "pool.a.com"}, ALPN: []string{"h2"}})
			},
			Classify: func(l *Lab, v *VisitResult) Support {
				if v.OK && v.ConnectedTo.Addr() == l.Web1 {
					return SupportFull
				}
				return SupportNone
			},
		},
		{
			Row: "ServiceMode TargetName", URL: "https://a.com",
			Build: func(l *Lab) {
				l.HTTPS("a.com.", 1, "pool.a.com.", params(func(ps *svcb.Params) {
					_ = ps.SetALPN([]string{"h2"})
				}))
				l.A("a.com.", l.Web1)
				l.A("pool.a.com.", l.Web2)
				// The right service lives at pool.a.com (Web2); Web1
				// hosts something else entirely.
				l.Endpoint(l.Web2, 443, &webserver.Endpoint{
					CertNames: []string{"a.com", "pool.a.com"}, ALPN: []string{"h2"}})
				l.Endpoint(l.Web1, 443, &webserver.Endpoint{
					CertNames: []string{"unrelated.example"}, ALPN: []string{"h2"}})
			},
			Classify: func(l *Lab, v *VisitResult) Support {
				if v.OK && v.ConnectedTo.Addr() == l.Web2 {
					return SupportFull
				}
				return SupportNone
			},
		},
		{
			Row: "port", URL: "https://a.com",
			Build: func(l *Lab) {
				l.HTTPS("a.com.", 1, ".", params(func(ps *svcb.Params) {
					_ = ps.SetALPN([]string{"h2"})
					ps.SetPort(8443)
				}))
				l.A("a.com.", l.Web1)
				l.Endpoint(l.Web1, 8443, &webserver.Endpoint{
					CertNames: []string{"a.com"}, ALPN: []string{"h2"}})
			},
			Classify: func(l *Lab, v *VisitResult) Support {
				if v.OK && v.ConnectedTo.Port() == 8443 {
					return SupportFull
				}
				return SupportNone
			},
		},
		{
			Row: "alpn", URL: "https://a.com",
			Build: func(l *Lab) {
				// The server exclusively advertises and supports h3.
				l.HTTPS("a.com.", 1, ".", params(func(ps *svcb.Params) {
					_ = ps.SetALPN([]string{"h3"})
				}))
				l.A("a.com.", l.Web1)
				l.Endpoint(l.Web1, 443, &webserver.Endpoint{
					CertNames: []string{"a.com"}, ALPN: []string{"h3"}})
			},
			Classify: func(l *Lab, v *VisitResult) Support {
				if v.OK && v.ALPN == "h3" {
					return SupportFull
				}
				return SupportNone
			},
		},
		{
			Row: "IP hints", URL: "https://a.com",
			Build: func(l *Lab) {
				l.HTTPS("a.com.", 1, ".", params(func(ps *svcb.Params) {
					_ = ps.SetALPN([]string{"h2"})
					_ = ps.SetIPv4Hints([]netip.Addr{l.HintAddr})
				}))
				l.A("a.com.", l.Web1)
				for _, addr := range []netip.Addr{l.Web1, l.HintAddr} {
					l.Endpoint(addr, 443, &webserver.Endpoint{
						CertNames: []string{"a.com"}, ALPN: []string{"h2"}})
				}
			},
			Classify: func(l *Lab, v *VisitResult) Support {
				if v.OK && v.ConnectedTo.Addr() == l.HintAddr {
					return SupportFull
				}
				return SupportNone
			},
		},
	}
}

// echShared builds the shared-mode ECH zone: cover.a.com and a.com on the
// same address. mutate customises the endpoint/record after the default
// wiring.
func echShared(l *Lab, echList []byte, ep *webserver.Endpoint) {
	l.HTTPS("a.com.", 1, ".", params(func(ps *svcb.Params) {
		_ = ps.SetALPN([]string{"h2"})
		ps.SetECH(echList)
	}))
	l.A("a.com.", l.Web1)
	l.A("cover.a.com.", l.Web1)
	l.Endpoint(l.Web1, 443, ep)
	l.HTTPPort80(l.Web1)
}

// Table7Scenarios returns the §5.3 ECH scenario list.
func Table7Scenarios() []Scenario {
	return []Scenario{
		{
			Row: "Shared Mode Support", URL: "https://a.com",
			Build: func(l *Lab) {
				echShared(l, l.KM.ConfigList(l.Clock.Now()), &webserver.Endpoint{
					CertNames: []string{"a.com", "cover.a.com"}, ALPN: []string{"h2"},
					ECHKeys: l.KM})
			},
			Classify: func(l *Lab, v *VisitResult) Support {
				if v.OK && v.ECHUsed {
					return SupportFull
				}
				return SupportNone
			},
		},
		{
			Row: "(1) Unilateral ECH", URL: "https://a.com",
			Build: func(l *Lab) {
				// DNS still advertises ECH; the server dropped support.
				echShared(l, l.KM.ConfigList(l.Clock.Now()), &webserver.Endpoint{
					CertNames: []string{"a.com", "cover.a.com"}, ALPN: []string{"h2"}})
			},
			Classify: func(l *Lab, v *VisitResult) Support {
				// Success = graceful fallback to standard TLS.
				if v.OK && !v.ECHUsed {
					return SupportFull
				}
				return SupportNone
			},
		},
		{
			Row: "(2) Malformed ECH", URL: "https://a.com",
			Build: func(l *Lab) {
				echShared(l, []byte{0xde, 0xad, 0xbe, 0xef}, &webserver.Endpoint{
					CertNames: []string{"a.com", "cover.a.com"}, ALPN: []string{"h2"},
					ECHKeys: l.KM})
			},
			Classify: func(l *Lab, v *VisitResult) Support {
				if v.OK {
					return SupportFull // ignored the malformed config
				}
				return SupportNone // hard failure
			},
		},
		{
			Row: "(3) Mismatched key", URL: "https://a.com",
			Build: func(l *Lab) {
				// DNS carries a stale key; the server offers retry
				// configs from its current keys.
				echShared(l, l.StaleKM.ConfigList(l.Clock.Now()), &webserver.Endpoint{
					CertNames: []string{"a.com", "cover.a.com"}, ALPN: []string{"h2"},
					ECHKeys: l.KM})
			},
			Classify: func(l *Lab, v *VisitResult) Support {
				if v.OK && v.ECHUsed && len(v.Attempts) > 1 {
					return SupportFull // succeeded via the retry config
				}
				return SupportNone
			},
		},
		{
			Row: "Split Mode Support", URL: "https://a.com",
			Build: func(l *Lab) {
				km, _ := ech.NewKeyManager(rand.New(rand.NewSource(5)), "b.com",
					time.Hour, 2*time.Hour, l.Clock.Now().Add(-time.Hour))
				backend := &webserver.Endpoint{CertNames: []string{"a.com"}, ALPN: []string{"h2"}}
				front := &webserver.Endpoint{
					CertNames: []string{"b.com"}, ALPN: []string{"h2"},
					ECHKeys:  km,
					Backends: map[string]*webserver.Endpoint{"a.com": backend},
				}
				l.HTTPS("a.com.", 1, ".", params(func(ps *svcb.Params) {
					_ = ps.SetALPN([]string{"h2"})
					ps.SetECH(km.ConfigList(l.Clock.Now()))
				}))
				l.A("a.com.", l.Web1)
				l.A("b.com.", l.Web2)
				l.Endpoint(l.Web1, 443, backend)
				l.Endpoint(l.Web2, 443, front)
			},
			Classify: func(l *Lab, v *VisitResult) Support {
				if v.OK && v.ECHUsed {
					return SupportFull
				}
				return SupportNone
			},
		},
	}
}

// RunMatrix executes a scenario list for each browser and renders the
// support matrix.
func RunMatrix(title string, scenarios []Scenario, behaviors []Behavior) (*analysis.Table, map[string]map[string]Support) {
	t := &analysis.Table{Title: title, Columns: []string{"scenario"}}
	for _, b := range behaviors {
		t.Columns = append(t.Columns, b.Name)
	}
	marks := map[string]map[string]Support{}
	for _, sc := range scenarios {
		row := []string{sc.Row}
		marks[sc.Row] = map[string]Support{}
		for _, b := range behaviors {
			l := NewLab()
			sc.Build(l)
			v := l.Visit(b, sc.URL)
			s := sc.Classify(l, v)
			marks[sc.Row][b.Name] = s
			row = append(row, s.Mark())
		}
		t.Rows = append(t.Rows, row)
	}
	return t, marks
}

// FailoverScenario is one §5.2.2 failover experiment.
type FailoverScenario struct {
	Row      string
	Build    func(l *Lab)
	Classify func(l *Lab, v *VisitResult) Support
}

// FailoverScenarios returns the port/IP-hint failover experiments.
func FailoverScenarios() []Scenario {
	return []Scenario{
		{
			Row: "port failover (server on 443 only)", URL: "https://a.com",
			Build: func(l *Lab) {
				l.HTTPS("a.com.", 1, ".", params(func(ps *svcb.Params) {
					_ = ps.SetALPN([]string{"h2"})
					ps.SetPort(8443)
				}))
				l.A("a.com.", l.Web1)
				l.Endpoint(l.Web1, 443, &webserver.Endpoint{
					CertNames: []string{"a.com"}, ALPN: []string{"h2"}})
			},
			Classify: func(l *Lab, v *VisitResult) Support {
				if v.OK {
					return SupportFull
				}
				return SupportNone
			},
		},
		{
			Row: "IP hint failover (server on hint addr only)", URL: "https://a.com",
			Build: func(l *Lab) {
				l.HTTPS("a.com.", 1, ".", params(func(ps *svcb.Params) {
					_ = ps.SetALPN([]string{"h2"})
					_ = ps.SetIPv4Hints([]netip.Addr{l.HintAddr})
				}))
				l.A("a.com.", l.Web1)
				l.Endpoint(l.HintAddr, 443, &webserver.Endpoint{
					CertNames: []string{"a.com"}, ALPN: []string{"h2"}})
			},
			Classify: func(l *Lab, v *VisitResult) Support {
				if v.OK && v.ConnectedTo.Addr() == l.HintAddr {
					return SupportFull
				}
				return SupportNone
			},
		},
		{
			Row: "IP hint failover (server on A addr only)", URL: "https://a.com",
			Build: func(l *Lab) {
				l.HTTPS("a.com.", 1, ".", params(func(ps *svcb.Params) {
					_ = ps.SetALPN([]string{"h2"})
					_ = ps.SetIPv4Hints([]netip.Addr{l.HintAddr})
				}))
				l.A("a.com.", l.Web1)
				l.Endpoint(l.Web1, 443, &webserver.Endpoint{
					CertNames: []string{"a.com"}, ALPN: []string{"h2"}})
			},
			Classify: func(l *Lab, v *VisitResult) Support {
				if v.OK && v.ConnectedTo.Addr() == l.Web1 {
					return SupportFull
				}
				return SupportNone
			},
		},
	}
}

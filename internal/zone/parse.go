package zone

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"

	"repro/internal/dnswire"
	"repro/internal/svcb"
)

// This file implements a BIND-style zone-file parser covering the record
// types the framework uses, so testbed zones (the paper's §5 BIND9
// configurations) can be written as text:
//
//	$ORIGIN a.com.
//	$TTL 60
//	@        IN SOA   ns1.a.com. hostmaster.a.com. 1 7200 3600 1209600 300
//	@        IN NS    ns1.a.com.
//	@        IN A     192.0.2.1
//	@        IN HTTPS 1 . alpn=h2,h3 ipv4hint=192.0.2.1
//	www      IN CNAME a.com.

// Parse builds a zone from zone-file text rooted at origin. Lines may use
// $ORIGIN and $TTL directives; "@" denotes the current origin; names
// without a trailing dot are relative to it. Class defaults to IN; TTLs
// default to the $TTL value (or 300).
func Parse(origin, text string) (*Zone, error) {
	origin = dnswire.CanonicalName(origin)
	z := New(origin)
	current := origin
	defaultTTL := uint32(300)
	lastOwner := origin

	for lineNo, raw := range strings.Split(text, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "$ORIGIN":
			if len(fields) != 2 {
				return nil, fmt.Errorf("zone: line %d: $ORIGIN needs one argument", lineNo+1)
			}
			current = dnswire.CanonicalName(fields[1])
			continue
		case "$TTL":
			if len(fields) != 2 {
				return nil, fmt.Errorf("zone: line %d: $TTL needs one argument", lineNo+1)
			}
			n, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("zone: line %d: bad $TTL: %v", lineNo+1, err)
			}
			defaultTTL = uint32(n)
			continue
		}
		// Lines starting with whitespace inherit the previous owner.
		owner := lastOwner
		if !strings.HasPrefix(raw, " ") && !strings.HasPrefix(raw, "\t") {
			owner = qualify(fields[0], current)
			fields = fields[1:]
		}
		lastOwner = owner

		rr, err := parseRecordFields(owner, fields, current, defaultTTL)
		if err != nil {
			return nil, fmt.Errorf("zone: line %d: %w", lineNo+1, err)
		}
		z.Add(rr)
	}
	return z, nil
}

// qualify resolves a possibly relative name against origin.
func qualify(name, origin string) string {
	if name == "@" {
		return origin
	}
	if strings.HasSuffix(name, ".") {
		return dnswire.CanonicalName(name)
	}
	return dnswire.CanonicalName(name + "." + origin)
}

// parseRecordFields parses "[TTL] [IN] TYPE rdata..." for one owner.
func parseRecordFields(owner string, fields []string, origin string, defaultTTL uint32) (dnswire.RR, error) {
	rr := dnswire.RR{Name: owner, Class: dnswire.ClassINET, TTL: defaultTTL}
	// Optional TTL.
	if len(fields) > 0 {
		if n, err := strconv.ParseUint(fields[0], 10, 32); err == nil {
			rr.TTL = uint32(n)
			fields = fields[1:]
		}
	}
	// Optional class.
	if len(fields) > 0 && (fields[0] == "IN" || fields[0] == "in") {
		fields = fields[1:]
	}
	if len(fields) == 0 {
		return rr, fmt.Errorf("missing record type")
	}
	typeName := strings.ToUpper(fields[0])
	args := fields[1:]

	need := func(n int) error {
		if len(args) < n {
			return fmt.Errorf("%s needs %d fields, got %d", typeName, n, len(args))
		}
		return nil
	}
	switch typeName {
	case "A":
		if err := need(1); err != nil {
			return rr, err
		}
		addr, err := netip.ParseAddr(args[0])
		if err != nil || !addr.Is4() {
			return rr, fmt.Errorf("bad A address %q", args[0])
		}
		rr.Type, rr.Data = dnswire.TypeA, &dnswire.AData{Addr: addr}
	case "AAAA":
		if err := need(1); err != nil {
			return rr, err
		}
		addr, err := netip.ParseAddr(args[0])
		if err != nil || !addr.Is6() || addr.Is4In6() {
			return rr, fmt.Errorf("bad AAAA address %q", args[0])
		}
		rr.Type, rr.Data = dnswire.TypeAAAA, &dnswire.AAAAData{Addr: addr}
	case "CNAME":
		if err := need(1); err != nil {
			return rr, err
		}
		rr.Type, rr.Data = dnswire.TypeCNAME, &dnswire.CNAMEData{Target: qualify(args[0], origin)}
	case "DNAME":
		if err := need(1); err != nil {
			return rr, err
		}
		rr.Type, rr.Data = dnswire.TypeDNAME, &dnswire.DNAMEData{Target: qualify(args[0], origin)}
	case "NS":
		if err := need(1); err != nil {
			return rr, err
		}
		rr.Type, rr.Data = dnswire.TypeNS, &dnswire.NSData{Host: qualify(args[0], origin)}
	case "PTR":
		if err := need(1); err != nil {
			return rr, err
		}
		rr.Type, rr.Data = dnswire.TypePTR, &dnswire.PTRData{Target: qualify(args[0], origin)}
	case "MX":
		if err := need(2); err != nil {
			return rr, err
		}
		pref, err := strconv.ParseUint(args[0], 10, 16)
		if err != nil {
			return rr, fmt.Errorf("bad MX preference %q", args[0])
		}
		rr.Type = dnswire.TypeMX
		rr.Data = &dnswire.MXData{Preference: uint16(pref), Host: qualify(args[1], origin)}
	case "TXT":
		if err := need(1); err != nil {
			return rr, err
		}
		var strs []string
		for _, a := range args {
			strs = append(strs, strings.Trim(a, `"`))
		}
		rr.Type, rr.Data = dnswire.TypeTXT, &dnswire.TXTData{Strings: strs}
	case "SOA":
		if err := need(7); err != nil {
			return rr, err
		}
		nums := make([]uint32, 5)
		for i := 0; i < 5; i++ {
			n, err := strconv.ParseUint(args[2+i], 10, 32)
			if err != nil {
				return rr, fmt.Errorf("bad SOA field %q", args[2+i])
			}
			nums[i] = uint32(n)
		}
		rr.Type = dnswire.TypeSOA
		rr.Data = &dnswire.SOAData{
			MName: qualify(args[0], origin), RName: qualify(args[1], origin),
			Serial: nums[0], Refresh: nums[1], Retry: nums[2], Expire: nums[3], Minimum: nums[4],
		}
	case "SRV":
		if err := need(4); err != nil {
			return rr, err
		}
		var vals [3]uint16
		for i := 0; i < 3; i++ {
			n, err := strconv.ParseUint(args[i], 10, 16)
			if err != nil {
				return rr, fmt.Errorf("bad SRV field %q", args[i])
			}
			vals[i] = uint16(n)
		}
		rr.Type = dnswire.TypeSRV
		rr.Data = &dnswire.SRVData{Priority: vals[0], Weight: vals[1], Port: vals[2],
			Target: qualify(args[3], origin)}
	case "HTTPS", "SVCB":
		if err := need(2); err != nil {
			return rr, err
		}
		prio, err := strconv.ParseUint(args[0], 10, 16)
		if err != nil {
			return rr, fmt.Errorf("bad SvcPriority %q", args[0])
		}
		target := args[1]
		if target != "." {
			target = qualify(target, origin)
		}
		params, err := svcb.ParseParams(args[2:])
		if err != nil {
			return rr, err
		}
		if prio == 0 && len(params) > 0 {
			return rr, fmt.Errorf("AliasMode record must not carry SvcParams")
		}
		rr.Type = dnswire.TypeHTTPS
		if typeName == "SVCB" {
			rr.Type = dnswire.TypeSVCB
		}
		rr.Data = &dnswire.SVCBData{Priority: uint16(prio), Target: target, Params: params}
	default:
		return rr, fmt.Errorf("unsupported record type %q", typeName)
	}
	return rr, nil
}

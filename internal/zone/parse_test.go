package zone

import (
	"strings"
	"testing"

	"repro/internal/dnswire"
)

const sampleZone = `
$ORIGIN a.com.
$TTL 60
@        IN SOA   ns1.a.com. hostmaster.a.com. 1 7200 3600 1209600 300
@        IN NS    ns1
ns1      IN A     192.0.2.53
@        IN A     192.0.2.1
@        IN AAAA  2001:db8::1
@        300 IN HTTPS 1 . alpn=h2,h3 ipv4hint=192.0.2.1 port=8443
alias    IN CNAME @
www      IN CNAME a.com.
mail     IN MX    10 mx.a.com.
_svc._tcp IN SRV  1 5 443 a.com.
txt      IN TXT   "hello world"
redirect IN HTTPS 0 b.example.net.
; full-line comment
deep     IN A 192.0.2.7 ; trailing comment
`

func TestParseSampleZone(t *testing.T) {
	z, err := Parse("a.com.", sampleZone)
	if err != nil {
		t.Fatal(err)
	}
	// SOA present with parsed timers.
	soaRRs, _, ok := z.Lookup("a.com.", dnswire.TypeSOA)
	if !ok {
		t.Fatal("SOA missing")
	}
	soa := soaRRs[0].Data.(*dnswire.SOAData)
	if soa.Serial != 1 || soa.Minimum != 300 || soa.MName != "ns1.a.com." {
		t.Errorf("SOA = %+v", soa)
	}
	// Relative name qualification.
	if _, _, ok := z.Lookup("ns1.a.com.", dnswire.TypeA); !ok {
		t.Error("relative ns1 not qualified")
	}
	// HTTPS record with explicit TTL and params.
	httpsRRs, _, ok := z.Lookup("a.com.", dnswire.TypeHTTPS)
	if !ok || httpsRRs[0].TTL != 300 {
		t.Fatalf("HTTPS = %+v ok=%v", httpsRRs, ok)
	}
	data := httpsRRs[0].Data.(*dnswire.SVCBData)
	if data.Priority != 1 || data.Target != "." {
		t.Errorf("HTTPS fields = %+v", data)
	}
	if port, ok := data.Params.Port(); !ok || port != 8443 {
		t.Errorf("port = %d, %v", port, ok)
	}
	if alpn, _ := data.Params.ALPN(); len(alpn) != 2 {
		t.Errorf("alpn = %v", alpn)
	}
	// "@" in RDATA.
	cnameRRs, _, _ := z.Lookup("alias.a.com.", dnswire.TypeCNAME)
	if cnameRRs[0].Data.(*dnswire.CNAMEData).Target != "a.com." {
		t.Errorf("alias target = %v", cnameRRs[0].Data)
	}
	// AliasMode HTTPS.
	aliasRRs, _, _ := z.Lookup("redirect.a.com.", dnswire.TypeHTTPS)
	if !aliasRRs[0].Data.(*dnswire.SVCBData).AliasMode() {
		t.Error("redirect not AliasMode")
	}
	// Default TTL applied.
	aRRs, _, _ := z.Lookup("a.com.", dnswire.TypeA)
	if aRRs[0].TTL != 60 {
		t.Errorf("default TTL = %d", aRRs[0].TTL)
	}
	// Comments stripped.
	if _, _, ok := z.Lookup("deep.a.com.", dnswire.TypeA); !ok {
		t.Error("trailing-comment line lost")
	}
	// SRV parsed.
	srvRRs, _, ok := z.Lookup("_svc._tcp.a.com.", dnswire.TypeSRV)
	if !ok || srvRRs[0].Data.(*dnswire.SRVData).Port != 443 {
		t.Error("SRV broken")
	}
	// MX parsed.
	mxRRs, _, ok := z.Lookup("mail.a.com.", dnswire.TypeMX)
	if !ok || mxRRs[0].Data.(*dnswire.MXData).Preference != 10 {
		t.Error("MX broken")
	}
}

func TestParsedZoneServes(t *testing.T) {
	z, err := Parse("a.com.", sampleZone)
	if err != nil {
		t.Fatal(err)
	}
	res := z.Query("alias.a.com.", dnswire.TypeA, false)
	if len(res.Answer) != 2 {
		t.Errorf("CNAME chase through parsed zone = %+v", res.Answer)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"@ IN A not-an-ip",
		"@ IN AAAA 1.2.3.4",
		"@ IN HTTPS x .",
		"@ IN HTTPS 0 b.com. alpn=h2", // AliasMode with params
		"@ IN HTTPS 1",                // missing target
		"@ IN MX ten mx.a.com.",
		"@ IN SOA ns1 h 1 2 3 4", // short SOA
		"@ IN WKS 1.2.3.4",       // unsupported type
		"@ IN",                   // missing type
		"$ORIGIN",                // bad directive
		"$TTL abc",
		"@ IN SRV 1 2 x a.com.",
	}
	for _, line := range bad {
		if _, err := Parse("a.com.", line); err == nil {
			t.Errorf("Parse accepted %q", line)
		}
	}
}

func TestParseOriginSwitch(t *testing.T) {
	text := strings.Join([]string{
		"$ORIGIN a.com.",
		"@ IN A 192.0.2.1",
		"$ORIGIN sub.a.com.",
		"@ IN A 192.0.2.2",
		"host IN A 192.0.2.3",
	}, "\n")
	z, err := Parse("a.com.", text)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a.com.", "sub.a.com.", "host.sub.a.com."} {
		if _, _, ok := z.Lookup(name, dnswire.TypeA); !ok {
			t.Errorf("%s missing", name)
		}
	}
}

func TestParseContinuationOwner(t *testing.T) {
	text := "www IN A 192.0.2.1\n IN AAAA 2001:db8::5\n"
	z, err := Parse("a.com.", text)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := z.Lookup("www.a.com.", dnswire.TypeAAAA); !ok {
		t.Error("continuation line owner not inherited")
	}
}

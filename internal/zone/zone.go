// Package zone implements an authoritative DNS zone: an RRset store with
// the lookup semantics an authoritative server needs (exact match, CNAME,
// delegation referrals, NXDOMAIN/NODATA) plus whole-zone DNSSEC signing.
package zone

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/dnssec"
	"repro/internal/dnswire"
)

// rrsetKey identifies an RRset within a zone.
type rrsetKey struct {
	name string
	typ  dnswire.Type
}

// Zone is a single authoritative zone rooted at Origin.
type Zone struct {
	Origin string

	mu     sync.RWMutex
	rrsets map[rrsetKey][]dnswire.RR
	sigs   map[rrsetKey][]dnswire.RR
	// delegations lists child zone cuts (names with NS RRsets below the
	// apex) for referral processing.
	delegations map[string]bool

	ksk, zsk *dnssec.KeyPair
	signedAt time.Time
}

// New creates an empty zone for origin.
func New(origin string) *Zone {
	return &Zone{
		Origin:      dnswire.CanonicalName(origin),
		rrsets:      map[rrsetKey][]dnswire.RR{},
		sigs:        map[rrsetKey][]dnswire.RR{},
		delegations: map[string]bool{},
	}
}

// SetSOA installs the apex SOA record with conventional timers.
func (z *Zone) SetSOA(primaryNS, mbox string, serial uint32, minTTL uint32) {
	z.Add(dnswire.RR{
		Name: z.Origin, Type: dnswire.TypeSOA, Class: dnswire.ClassINET, TTL: 3600,
		Data: &dnswire.SOAData{
			MName: dnswire.CanonicalName(primaryNS), RName: dnswire.CanonicalName(mbox),
			Serial: serial, Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: minTTL,
		},
	})
}

// Add inserts a record, replacing any identical record in its RRset. Adding
// invalidates existing signatures for that RRset.
func (z *Zone) Add(rr dnswire.RR) {
	rr.Name = dnswire.CanonicalName(rr.Name)
	z.mu.Lock()
	defer z.mu.Unlock()
	k := rrsetKey{name: rr.Name, typ: rr.Type}
	set := z.rrsets[k]
	newWire, err := dnswire.PackRR(rr)
	if err == nil {
		for i, existing := range set {
			if w, err2 := dnswire.PackRR(existing); err2 == nil && string(w) == string(newWire) {
				set[i] = rr
				z.rrsets[k] = set
				delete(z.sigs, k)
				return
			}
		}
	}
	z.rrsets[k] = append(set, rr)
	delete(z.sigs, k)
	if rr.Type == dnswire.TypeNS && rr.Name != z.Origin && dnswire.IsSubdomain(rr.Name, z.Origin) {
		z.delegations[rr.Name] = true
	}
}

// RemoveRRset deletes the whole RRset at (name, type).
func (z *Zone) RemoveRRset(name string, t dnswire.Type) {
	name = dnswire.CanonicalName(name)
	z.mu.Lock()
	defer z.mu.Unlock()
	k := rrsetKey{name: name, typ: t}
	delete(z.rrsets, k)
	delete(z.sigs, k)
	if t == dnswire.TypeNS {
		delete(z.delegations, name)
	}
}

// RemoveName deletes every RRset at name.
func (z *Zone) RemoveName(name string) {
	name = dnswire.CanonicalName(name)
	z.mu.Lock()
	defer z.mu.Unlock()
	for k := range z.rrsets {
		if k.name == name {
			delete(z.rrsets, k)
			delete(z.sigs, k)
		}
	}
	delete(z.delegations, name)
}

// Lookup returns the RRset and its signatures for (name, type).
func (z *Zone) Lookup(name string, t dnswire.Type) (rrs, sigs []dnswire.RR, ok bool) {
	name = dnswire.CanonicalName(name)
	z.mu.RLock()
	defer z.mu.RUnlock()
	k := rrsetKey{name: name, typ: t}
	rrs, ok = z.rrsets[k]
	if !ok {
		return nil, nil, false
	}
	return cloneRRs(rrs), cloneRRs(z.sigs[k]), true
}

// NameExists reports whether any RRset exists at name.
func (z *Zone) NameExists(name string) bool {
	name = dnswire.CanonicalName(name)
	z.mu.RLock()
	defer z.mu.RUnlock()
	for k := range z.rrsets {
		if k.name == name {
			return true
		}
	}
	return false
}

// Names returns every owner name in the zone, sorted.
func (z *Zone) Names() []string {
	z.mu.RLock()
	defer z.mu.RUnlock()
	seen := map[string]bool{}
	for k := range z.rrsets {
		seen[k.name] = true
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RRsets returns all RRsets in the zone (deep-copied), keyed for iteration.
func (z *Zone) RRsets() map[string][]dnswire.RR {
	z.mu.RLock()
	defer z.mu.RUnlock()
	out := make(map[string][]dnswire.RR, len(z.rrsets))
	for k, rrs := range z.rrsets {
		out[k.name+"|"+k.typ.String()] = cloneRRs(rrs)
	}
	return out
}

func cloneRRs(rrs []dnswire.RR) []dnswire.RR {
	if rrs == nil {
		return nil
	}
	out := make([]dnswire.RR, len(rrs))
	for i, rr := range rrs {
		out[i] = rr.Clone()
	}
	return out
}

// Keys returns the zone's signing keys, if the zone is signed.
func (z *Zone) Keys() (ksk, zsk *dnssec.KeyPair) {
	z.mu.RLock()
	defer z.mu.RUnlock()
	return z.ksk, z.zsk
}

// Signed reports whether Sign has been called.
func (z *Zone) Signed() bool {
	z.mu.RLock()
	defer z.mu.RUnlock()
	return z.ksk != nil
}

// Sign generates KSK/ZSK keys (if not provided), publishes the DNSKEY RRset,
// and signs every RRset in the zone: the DNSKEY RRset with the KSK,
// everything else with the ZSK. Delegation NS RRsets (and glue) are not
// signed, matching authoritative behaviour.
func (z *Zone) Sign(rng io.Reader, inception, expiration time.Time) error {
	ksk, err := dnssec.GenerateKey(rng, z.Origin, true)
	if err != nil {
		return err
	}
	zsk, err := dnssec.GenerateKey(rng, z.Origin, false)
	if err != nil {
		return err
	}
	return z.SignWith(rng, ksk, zsk, inception, expiration)
}

// SignWith signs the zone with caller-provided keys.
func (z *Zone) SignWith(rng io.Reader, ksk, zsk *dnssec.KeyPair, inception, expiration time.Time) error {
	z.mu.Lock()
	defer z.mu.Unlock()
	z.ksk, z.zsk = ksk, zsk
	z.signedAt = inception

	// Publish the DNSKEY RRset at the apex.
	dnskeyRRs := []dnswire.RR{ksk.DNSKEY(3600), zsk.DNSKEY(3600)}
	z.rrsets[rrsetKey{name: z.Origin, typ: dnswire.TypeDNSKEY}] = dnskeyRRs

	// Sign in sorted order: ECDSA signing consumes a variable number of
	// rng bytes, so map-order iteration would leave the shared rng in a
	// different state on every run, breaking seed determinism world-wide.
	keys := make([]rrsetKey, 0, len(z.rrsets))
	for k := range z.rrsets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].name != keys[j].name {
			return keys[i].name < keys[j].name
		}
		return keys[i].typ < keys[j].typ
	})
	for _, k := range keys {
		rrs := z.rrsets[k]
		if k.typ == dnswire.TypeRRSIG {
			continue
		}
		// Delegation point: NS (and DS is signed, but glue A/AAAA is not).
		if z.delegations[k.name] {
			if k.typ != dnswire.TypeDS {
				delete(z.sigs, k)
				continue
			}
		}
		signer := zsk
		if k.typ == dnswire.TypeDNSKEY {
			signer = ksk
		}
		sig, err := dnssec.SignRRset(rng, signer, rrs, inception, expiration)
		if err != nil {
			return fmt.Errorf("zone %s: signing %s/%s: %w", z.Origin, k.name, k.typ, err)
		}
		z.sigs[k] = []dnswire.RR{sig}
	}
	return nil
}

// Unsign removes all signatures and keys from the zone.
func (z *Zone) Unsign() {
	z.mu.Lock()
	defer z.mu.Unlock()
	z.ksk, z.zsk = nil, nil
	z.sigs = map[rrsetKey][]dnswire.RR{}
	delete(z.rrsets, rrsetKey{name: z.Origin, typ: dnswire.TypeDNSKEY})
}

// DS returns the delegation-signer record for this zone's KSK, for upload
// to the parent zone. It fails if the zone is unsigned.
func (z *Zone) DS() (dnswire.RR, error) {
	z.mu.RLock()
	ksk := z.ksk
	z.mu.RUnlock()
	if ksk == nil {
		return dnswire.RR{}, fmt.Errorf("zone %s: not signed", z.Origin)
	}
	return ksk.DS(3600)
}

// QueryResult is the authoritative answer for a question against one zone.
type QueryResult struct {
	RCode      dnswire.RCode
	Answer     []dnswire.RR
	Authority  []dnswire.RR
	Additional []dnswire.RR
	// Referral indicates the response is a delegation, not an
	// authoritative answer.
	Referral bool
}

// Query resolves a question against the zone's data with authoritative
// semantics. dnssecOK controls whether RRSIGs are included.
func (z *Zone) Query(name string, t dnswire.Type, dnssecOK bool) QueryResult {
	name = dnswire.CanonicalName(name)
	z.mu.RLock()
	defer z.mu.RUnlock()

	if !dnswire.IsSubdomain(name, z.Origin) {
		return QueryResult{RCode: dnswire.RCodeRefused}
	}

	// Delegation: if name is at or below a child zone cut, return a
	// referral with the child NS set (plus glue if present). Exception:
	// DS queries at the cut itself are answered authoritatively by the
	// parent (RFC 4035 §3.1.4.1).
	for cut := range z.delegations {
		if name == cut && t == dnswire.TypeDS {
			continue
		}
		if dnswire.IsSubdomain(name, cut) && name != z.Origin {
			res := QueryResult{Referral: true}
			nsKey := rrsetKey{name: cut, typ: dnswire.TypeNS}
			res.Authority = cloneRRs(z.rrsets[nsKey])
			if dnssecOK {
				if ds, ok := z.rrsets[rrsetKey{name: cut, typ: dnswire.TypeDS}]; ok {
					res.Authority = append(res.Authority, cloneRRs(ds)...)
					res.Authority = append(res.Authority, cloneRRs(z.sigs[rrsetKey{name: cut, typ: dnswire.TypeDS}])...)
				}
			}
			for _, ns := range z.rrsets[nsKey] {
				host := ns.Data.(*dnswire.NSData).Host
				for _, gt := range []dnswire.Type{dnswire.TypeA, dnswire.TypeAAAA} {
					if glue, ok := z.rrsets[rrsetKey{name: host, typ: gt}]; ok {
						res.Additional = append(res.Additional, cloneRRs(glue)...)
					}
				}
			}
			return res
		}
	}

	k := rrsetKey{name: name, typ: t}
	if rrs, ok := z.rrsets[k]; ok {
		res := QueryResult{Answer: cloneRRs(rrs)}
		if dnssecOK {
			res.Answer = append(res.Answer, cloneRRs(z.sigs[k])...)
		}
		return res
	}

	// CNAME processing: if a CNAME exists at the name (and the query was
	// not for CNAME), return it; resolution continues at the target.
	ck := rrsetKey{name: name, typ: dnswire.TypeCNAME}
	if cname, ok := z.rrsets[ck]; ok && t != dnswire.TypeCNAME {
		res := QueryResult{Answer: cloneRRs(cname)}
		if dnssecOK {
			res.Answer = append(res.Answer, cloneRRs(z.sigs[ck])...)
		}
		// Chase within this zone if the target is local.
		target := dnswire.CanonicalName(cname[0].Data.(*dnswire.CNAMEData).Target)
		if dnswire.IsSubdomain(target, z.Origin) && target != name {
			sub := z.queryLocked(target, t, dnssecOK, 8)
			res.Answer = append(res.Answer, sub...)
		}
		return res
	}

	// NODATA vs NXDOMAIN.
	soaKey := rrsetKey{name: z.Origin, typ: dnswire.TypeSOA}
	authority := cloneRRs(z.rrsets[soaKey])
	if dnssecOK {
		authority = append(authority, cloneRRs(z.sigs[soaKey])...)
	}
	if z.nameExistsLocked(name) {
		return QueryResult{Authority: authority} // NODATA
	}
	return QueryResult{RCode: dnswire.RCodeNXDomain, Authority: authority}
}

func (z *Zone) nameExistsLocked(name string) bool {
	for k := range z.rrsets {
		if k.name == name || strings.HasSuffix(k.name, "."+name) {
			return true
		}
	}
	return false
}

// queryLocked performs internal CNAME chasing with a depth limit.
func (z *Zone) queryLocked(name string, t dnswire.Type, dnssecOK bool, depth int) []dnswire.RR {
	if depth == 0 {
		return nil
	}
	k := rrsetKey{name: name, typ: t}
	if rrs, ok := z.rrsets[k]; ok {
		out := cloneRRs(rrs)
		if dnssecOK {
			out = append(out, cloneRRs(z.sigs[k])...)
		}
		return out
	}
	ck := rrsetKey{name: name, typ: dnswire.TypeCNAME}
	if cname, ok := z.rrsets[ck]; ok && t != dnswire.TypeCNAME {
		out := cloneRRs(cname)
		if dnssecOK {
			out = append(out, cloneRRs(z.sigs[ck])...)
		}
		target := dnswire.CanonicalName(cname[0].Data.(*dnswire.CNAMEData).Target)
		if dnswire.IsSubdomain(target, z.Origin) && target != name {
			out = append(out, z.queryLocked(target, t, dnssecOK, depth-1)...)
		}
		return out
	}
	return nil
}

package zone

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"repro/internal/dnssec"
	"repro/internal/dnswire"
)

func aRR(name, ip string, ttl uint32) dnswire.RR {
	return dnswire.RR{Name: name, Type: dnswire.TypeA, Class: dnswire.ClassINET, TTL: ttl,
		Data: &dnswire.AData{Addr: netip.MustParseAddr(ip)}}
}

func buildTestZone() *Zone {
	z := New("example.com")
	z.SetSOA("ns1.example.com.", "hostmaster.example.com.", 1, 300)
	z.Add(dnswire.RR{Name: "example.com.", Type: dnswire.TypeNS, Class: dnswire.ClassINET,
		TTL: 3600, Data: &dnswire.NSData{Host: "ns1.example.com."}})
	z.Add(aRR("ns1.example.com.", "10.0.0.53", 3600))
	z.Add(aRR("www.example.com.", "10.0.0.80", 300))
	z.Add(dnswire.RR{Name: "alias.example.com.", Type: dnswire.TypeCNAME, Class: dnswire.ClassINET,
		TTL: 300, Data: &dnswire.CNAMEData{Target: "www.example.com."}})
	z.Add(dnswire.RR{Name: "example.com.", Type: dnswire.TypeHTTPS, Class: dnswire.ClassINET,
		TTL: 300, Data: &dnswire.SVCBData{Priority: 1, Target: "."}})
	return z
}

func TestZoneExactMatch(t *testing.T) {
	z := buildTestZone()
	res := z.Query("www.example.com.", dnswire.TypeA, false)
	if res.RCode != dnswire.RCodeNoError || len(res.Answer) != 1 {
		t.Fatalf("Query = %+v", res)
	}
	if res.Answer[0].Data.(*dnswire.AData).Addr.String() != "10.0.0.80" {
		t.Errorf("wrong address: %v", res.Answer[0])
	}
}

func TestZoneCaseInsensitive(t *testing.T) {
	z := buildTestZone()
	res := z.Query("WWW.Example.COM", dnswire.TypeA, false)
	if len(res.Answer) != 1 {
		t.Errorf("case-insensitive lookup failed: %+v", res)
	}
}

func TestZoneNXDomainAndNODATA(t *testing.T) {
	z := buildTestZone()
	res := z.Query("nonexistent.example.com.", dnswire.TypeA, false)
	if res.RCode != dnswire.RCodeNXDomain {
		t.Errorf("want NXDOMAIN, got %v", res.RCode)
	}
	if len(res.Authority) == 0 || res.Authority[0].Type != dnswire.TypeSOA {
		t.Error("NXDOMAIN missing SOA in authority")
	}
	// Name exists, type does not: NODATA.
	res = z.Query("www.example.com.", dnswire.TypeHTTPS, false)
	if res.RCode != dnswire.RCodeNoError || len(res.Answer) != 0 {
		t.Errorf("NODATA wrong: %+v", res)
	}
	if len(res.Authority) == 0 {
		t.Error("NODATA missing SOA")
	}
}

func TestZoneCNAME(t *testing.T) {
	z := buildTestZone()
	res := z.Query("alias.example.com.", dnswire.TypeA, false)
	if len(res.Answer) != 2 {
		t.Fatalf("CNAME chase answer = %+v", res.Answer)
	}
	if res.Answer[0].Type != dnswire.TypeCNAME || res.Answer[1].Type != dnswire.TypeA {
		t.Errorf("CNAME chase order wrong: %+v", res.Answer)
	}
}

func TestZoneRefusesOutOfZone(t *testing.T) {
	z := buildTestZone()
	res := z.Query("other.net.", dnswire.TypeA, false)
	if res.RCode != dnswire.RCodeRefused {
		t.Errorf("out-of-zone rcode = %v", res.RCode)
	}
}

func TestZoneDelegation(t *testing.T) {
	z := buildTestZone()
	z.Add(dnswire.RR{Name: "sub.example.com.", Type: dnswire.TypeNS, Class: dnswire.ClassINET,
		TTL: 3600, Data: &dnswire.NSData{Host: "ns1.sub.example.com."}})
	z.Add(aRR("ns1.sub.example.com.", "10.0.1.53", 3600))
	res := z.Query("deep.sub.example.com.", dnswire.TypeA, false)
	if !res.Referral {
		t.Fatalf("expected referral: %+v", res)
	}
	if len(res.Authority) == 0 || res.Authority[0].Type != dnswire.TypeNS {
		t.Error("referral missing NS")
	}
	if len(res.Additional) == 0 {
		t.Error("referral missing glue")
	}
}

func TestZoneAddReplacesDuplicate(t *testing.T) {
	z := New("a.com")
	z.Add(aRR("a.com.", "1.1.1.1", 300))
	z.Add(aRR("a.com.", "1.1.1.1", 300)) // identical
	rrs, _, _ := z.Lookup("a.com.", dnswire.TypeA)
	if len(rrs) != 1 {
		t.Errorf("duplicate add produced %d records", len(rrs))
	}
	z.Add(aRR("a.com.", "2.2.2.2", 300))
	rrs, _, _ = z.Lookup("a.com.", dnswire.TypeA)
	if len(rrs) != 2 {
		t.Errorf("distinct add produced %d records", len(rrs))
	}
}

func TestZoneRemove(t *testing.T) {
	z := buildTestZone()
	z.RemoveRRset("www.example.com.", dnswire.TypeA)
	if _, _, ok := z.Lookup("www.example.com.", dnswire.TypeA); ok {
		t.Error("RemoveRRset did not remove")
	}
	z.RemoveName("example.com.")
	if z.NameExists("example.com.") {
		t.Error("RemoveName did not remove")
	}
}

func TestZoneSigning(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := buildTestZone()
	inception := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	if err := z.Sign(rng, inception, inception.Add(30*24*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if !z.Signed() {
		t.Error("Signed() false after Sign")
	}
	// DNSKEY RRset exists and is signed.
	keys, sigs, ok := z.Lookup("example.com.", dnswire.TypeDNSKEY)
	if !ok || len(keys) != 2 || len(sigs) != 1 {
		t.Fatalf("DNSKEY lookup: %d keys, %d sigs, ok=%v", len(keys), len(sigs), ok)
	}
	// The HTTPS RRset has a verifiable signature by the ZSK.
	rrs, hsigs, ok := z.Lookup("example.com.", dnswire.TypeHTTPS)
	if !ok || len(hsigs) != 1 {
		t.Fatalf("HTTPS lookup: ok=%v sigs=%d", ok, len(hsigs))
	}
	_, zsk := z.Keys()
	now := inception.Add(time.Hour)
	if err := dnssec.VerifyRRSIG(hsigs[0], rrs, zsk.DNSKEY(3600), now); err != nil {
		t.Errorf("HTTPS RRSIG invalid: %v", err)
	}
	// Query with DO returns signatures; without DO it does not.
	res := z.Query("example.com.", dnswire.TypeHTTPS, true)
	if !hasType(res.Answer, dnswire.TypeRRSIG) {
		t.Error("DO query missing RRSIG")
	}
	res = z.Query("example.com.", dnswire.TypeHTTPS, false)
	if hasType(res.Answer, dnswire.TypeRRSIG) {
		t.Error("non-DO query contains RRSIG")
	}
	// DS generation works.
	if _, err := z.DS(); err != nil {
		t.Errorf("DS: %v", err)
	}
	// Unsign removes everything.
	z.Unsign()
	if z.Signed() {
		t.Error("Signed() true after Unsign")
	}
	if _, _, ok := z.Lookup("example.com.", dnswire.TypeDNSKEY); ok {
		t.Error("DNSKEY remains after Unsign")
	}
}

func TestZoneSignInvalidatedByAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	z := buildTestZone()
	inception := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	if err := z.Sign(rng, inception, inception.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	z.Add(aRR("www.example.com.", "10.0.0.81", 300))
	_, sigs, _ := z.Lookup("www.example.com.", dnswire.TypeA)
	if len(sigs) != 0 {
		t.Error("stale signature survived RRset change")
	}
}

func hasType(rrs []dnswire.RR, t dnswire.Type) bool {
	for _, rr := range rrs {
		if rr.Type == t {
			return true
		}
	}
	return false
}

// Package scanner implements the paper's measurement framework (§4.1): the
// daily HTTPS/A/AAAA/SOA/NS scans of the Tranco lists through public
// resolvers (primary Google, backup Cloudflare), CNAME-chasing HTTPS
// re-queries, RRSIG and AD-bit collection, name-server address + WHOIS
// scans, the hourly ECH rotation scans, and the TLS connectivity probes for
// domains with mismatched IP hints.
package scanner

import (
	"fmt"
	"hash/fnv"
	"net/netip"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/dnswire"
	"repro/internal/ech"
	"repro/internal/simnet"
	"repro/internal/svcb"
	"repro/internal/whois"
)

// Prober performs a TLS reachability check toward addr for a domain
// (implemented by the providers world; an OpenSSL s_client in the paper).
type Prober interface {
	ProbeTLS(apex string, addr netip.Addr) error
}

// Transport sends one stub query through an alternative serving layer
// (e.g. a DoH upstream pool) instead of bare simnet resolver queries.
// Implementations handle their own failover across upstreams.
type Transport interface {
	Exchange(q *dnswire.Message) (*dnswire.Message, error)
}

// Scanner drives the measurement queries.
type Scanner struct {
	Net *simnet.Network
	// Primary and Backup are the public resolvers (8.8.8.8 and 1.1.1.1
	// in the paper).
	Primary netip.Addr
	Backup  netip.Addr
	// Transport, when non-nil, replaces the Primary/Backup stub queries:
	// every scan query goes through it (the encrypted-DNS path, with the
	// public resolvers as members of the transport's upstream pool).
	Transport Transport
	// Whois resolves name-server operators.
	Whois *whois.DB
	// Concurrency bounds parallel domain scans (the paper paces its
	// scans for ethics; here it bounds simulation goroutines).
	Concurrency int

	mu  sync.Mutex
	qid uint16
}

// New creates a scanner using the given resolvers.
func New(net *simnet.Network, primary, backup netip.Addr, db *whois.DB) *Scanner {
	return &Scanner{Net: net, Primary: primary, Backup: backup, Whois: db, Concurrency: 8}
}

func (s *Scanner) nextID() uint16 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.qid++
	return s.qid
}

// query sends one stub query, falling back to the backup resolver on error
// or SERVFAIL (the paper's Google→Cloudflare fallback). With a Transport
// configured, the query rides the encrypted serving layer instead and
// failover happens inside the transport's upstream pool.
func (s *Scanner) query(name string, t dnswire.Type) (*dnswire.Message, error) {
	q := dnswire.NewQuery(s.nextID(), name, t, true)
	if s.Transport != nil {
		resp, err := s.Transport.Exchange(q)
		if err != nil {
			return nil, err
		}
		if resp.RCode == dnswire.RCodeServFail {
			return nil, fmt.Errorf("scanner: SERVFAIL via transport for %s/%s", name, t)
		}
		return resp, nil
	}
	resp, err := s.Net.QueryDNS(s.Primary, q)
	if err == nil && resp.RCode != dnswire.RCodeServFail {
		return resp, nil
	}
	resp, berr := s.Net.QueryDNS(s.Backup, q)
	if berr == nil && resp.RCode != dnswire.RCodeServFail {
		return resp, nil
	}
	if err == nil {
		err = fmt.Errorf("scanner: SERVFAIL from both resolvers for %s/%s", name, t)
	}
	return nil, err
}

// SummarizeHTTPS converts a wire HTTPS record into the dataset summary.
func SummarizeHTTPS(rr dnswire.RR) (dataset.HTTPSRecord, bool) {
	data, ok := rr.Data.(*dnswire.SVCBData)
	if !ok {
		return dataset.HTTPSRecord{}, false
	}
	out := dataset.HTTPSRecord{
		Priority: data.Priority,
		Target:   data.Target,
	}
	if alpn, ok := data.Params.ALPN(); ok {
		out.ALPN = alpn
	}
	out.NoDefALPN = data.Params.Has(svcb.KeyNoDefaultALPN)
	if port, ok := data.Params.Port(); ok {
		out.Port, out.HasPort = port, true
	}
	if hints, ok := data.Params.IPv4Hints(); ok {
		out.V4Hints = hints
	}
	if hints, ok := data.Params.IPv6Hints(); ok {
		out.V6Hints = hints
	}
	if echBytes, ok := data.Params.ECH(); ok {
		out.HasECH = true
		if configs, err := ech.UnmarshalList(echBytes); err == nil {
			if cfg, err := ech.SelectConfig(configs); err == nil {
				out.ECHConfigID = cfg.ConfigID
				out.ECHKeyHash = hashBytes(cfg.PublicKey)
				out.ECHPublicName = cfg.PublicName
			}
		}
	}
	return out, true
}

func hashBytes(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// ScanDomain performs the full per-domain scan sequence: HTTPS (with CNAME
// chasing), then A/AAAA/SOA/NS when HTTPS records exist.
func (s *Scanner) ScanDomain(name string) *dataset.Observation {
	obs := &dataset.Observation{Name: dnswire.CanonicalName(name)}

	resp, err := s.query(name, dnswire.TypeHTTPS)
	if err != nil {
		obs.Err = err.Error()
		return obs
	}
	obs.AD = resp.AuthenticatedData
	s.extractHTTPS(resp, obs)

	// CNAME chase (§4.1): if the answer contains a CNAME but the resolver
	// did not chase to an HTTPS record, re-query the target explicitly.
	if len(obs.CNAMEChain) > 0 && !obs.HasHTTPS() {
		target := obs.CNAMEChain[len(obs.CNAMEChain)-1]
		if sub, err := s.query(target, dnswire.TypeHTTPS); err == nil {
			s.extractHTTPS(sub, obs)
			obs.AD = obs.AD && sub.AuthenticatedData
		}
	}

	if !obs.HasHTTPS() {
		return obs
	}
	// Follow-up queries for adopters.
	if resp, err := s.query(name, dnswire.TypeA); err == nil {
		for _, rr := range resp.Answer {
			if a, ok := rr.Data.(*dnswire.AData); ok {
				obs.A = append(obs.A, a.Addr)
			}
		}
	}
	if resp, err := s.query(name, dnswire.TypeAAAA); err == nil {
		for _, rr := range resp.Answer {
			if a, ok := rr.Data.(*dnswire.AAAAData); ok {
				obs.AAAA = append(obs.AAAA, a.Addr)
			}
		}
	}
	apex := dnswire.ApexOf(name)
	if resp, err := s.query(apex, dnswire.TypeSOA); err == nil {
		for _, rr := range resp.Answer {
			if rr.Type == dnswire.TypeSOA {
				obs.HasSOA = true
			}
		}
	}
	if resp, err := s.query(apex, dnswire.TypeNS); err == nil {
		for _, rr := range resp.Answer {
			if ns, ok := rr.Data.(*dnswire.NSData); ok {
				obs.NS = append(obs.NS, ns.Host)
			}
		}
	}
	return obs
}

func (s *Scanner) extractHTTPS(resp *dnswire.Message, obs *dataset.Observation) {
	for _, rr := range resp.Answer {
		switch rr.Type {
		case dnswire.TypeHTTPS:
			if sum, ok := SummarizeHTTPS(rr); ok {
				obs.HTTPS = append(obs.HTTPS, sum)
			}
		case dnswire.TypeRRSIG:
			if sig, ok := rr.Data.(*dnswire.RRSIGData); ok && sig.TypeCovered == dnswire.TypeHTTPS {
				obs.Signed = true
			}
		case dnswire.TypeCNAME:
			obs.CNAMEChain = append(obs.CNAMEChain, rr.Data.(*dnswire.CNAMEData).Target)
		}
	}
}

// ScanList scans a ranked domain list concurrently, producing a snapshot.
// kind is "apex" or "www"; for "www" the names are prefixed.
func (s *Scanner) ScanList(date time.Time, kind string, list []string) *dataset.Snapshot {
	snap := &dataset.Snapshot{Date: date, Kind: kind, Total: len(list), Obs: map[string]*dataset.Observation{}}
	type job struct {
		name string
		rank int
	}
	jobs := make(chan job)
	var wg sync.WaitGroup
	var mu sync.Mutex
	workers := s.Concurrency
	if workers < 1 {
		workers = 1
	}
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				obs := s.ScanDomain(j.name)
				obs.Rank = j.rank
				if obs.HasHTTPS() || obs.Err != "" {
					mu.Lock()
					snap.Obs[obs.Name] = obs
					mu.Unlock()
				}
			}
		}()
	}
	for i, apex := range list {
		name := apex
		if kind == "www" {
			name = "www." + apex
		}
		jobs <- job{name: name, rank: i + 1}
	}
	close(jobs)
	wg.Wait()
	return snap
}

// ScanNameServers resolves the addresses of every name-server host seen in
// the snapshot and attributes them via WHOIS (§4.2.2 methodology).
func (s *Scanner) ScanNameServers(date time.Time, snaps ...*dataset.Snapshot) *dataset.NSSnapshot {
	hosts := map[string]bool{}
	for _, snap := range snaps {
		for _, obs := range snap.Obs {
			for _, h := range obs.NS {
				hosts[dnswire.CanonicalName(h)] = true
			}
		}
	}
	out := &dataset.NSSnapshot{Date: date, Servers: map[string]*dataset.NSObservation{}}
	for host := range hosts {
		nso := &dataset.NSObservation{Host: host}
		if resp, err := s.query(host, dnswire.TypeA); err == nil {
			for _, rr := range resp.Answer {
				if a, ok := rr.Data.(*dnswire.AData); ok {
					nso.Addrs = append(nso.Addrs, a.Addr)
				}
			}
		}
		if s.Whois != nil && len(nso.Addrs) > 0 {
			nso.Org = s.Whois.AttributeNameServer(nso.Addrs[0])
		}
		out.Servers[host] = nso
	}
	return out
}

// ECHScan performs one hourly ECH observation pass over the given domains
// (the §4.4.2 experiment).
func (s *Scanner) ECHScan(now time.Time, domains []string) []dataset.ECHObservation {
	var out []dataset.ECHObservation
	for _, name := range domains {
		resp, err := s.query(name, dnswire.TypeHTTPS)
		if err != nil {
			continue
		}
		for _, rr := range resp.Answer {
			if rr.Type != dnswire.TypeHTTPS {
				continue
			}
			sum, ok := SummarizeHTTPS(rr)
			if !ok || !sum.HasECH {
				continue
			}
			out = append(out, dataset.ECHObservation{
				Time:       now,
				Domain:     dnswire.CanonicalName(name),
				ConfigID:   sum.ECHConfigID,
				KeyHash:    sum.ECHKeyHash,
				PublicName: sum.ECHPublicName,
			})
		}
	}
	return out
}

// ProbeMismatches runs the §4.3.5 connectivity experiment: for every
// observation whose IP hints disagree with its A records, TLS-probe both
// addresses.
func (s *Scanner) ProbeMismatches(date time.Time, snap *dataset.Snapshot, prober Prober) []dataset.ProbeResult {
	var out []dataset.ProbeResult
	for _, obs := range snap.Obs {
		if !obs.HasHTTPS() || len(obs.A) == 0 {
			continue
		}
		var hints []netip.Addr
		for _, rec := range obs.HTTPS {
			hints = append(hints, rec.V4Hints...)
		}
		if len(hints) == 0 {
			continue
		}
		mismatch := !sameAddrSet(hints, obs.A)
		if !mismatch {
			continue
		}
		apex := dnswire.ApexOf(obs.Name)
		res := dataset.ProbeResult{
			Date: date, Domain: obs.Name, Mismatch: true,
			HintAddr: hints[0], AAddr: obs.A[0],
		}
		res.HintOK = prober.ProbeTLS(apex, hints[0]) == nil
		res.AOK = prober.ProbeTLS(apex, obs.A[0]) == nil
		out = append(out, res)
	}
	return out
}

func sameAddrSet(a, b []netip.Addr) bool {
	if len(a) != len(b) {
		return false
	}
	set := map[netip.Addr]bool{}
	for _, x := range a {
		set[x] = true
	}
	for _, y := range b {
		if !set[y] {
			return false
		}
	}
	return true
}

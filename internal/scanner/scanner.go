// Package scanner implements the paper's measurement framework (§4.1): the
// daily HTTPS/A/AAAA/SOA/NS scans of the Tranco lists through public
// resolvers (primary Google, backup Cloudflare), CNAME-chasing HTTPS
// re-queries, RRSIG and AD-bit collection, name-server address + WHOIS
// scans, the hourly ECH rotation scans, and the TLS connectivity probes for
// domains with mismatched IP hints.
package scanner

import (
	"fmt"
	"hash/fnv"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/dnswire"
	"repro/internal/ech"
	"repro/internal/simnet"
	"repro/internal/svcb"
	"repro/internal/whois"
)

// Prober performs a TLS reachability check toward addr for a domain
// (implemented by the providers world; an OpenSSL s_client in the paper).
type Prober interface {
	ProbeTLS(apex string, addr netip.Addr) error
}

// Transport sends one stub query through an alternative serving layer
// (e.g. a DoH upstream pool) instead of bare simnet resolver queries.
// Implementations handle their own failover across upstreams.
type Transport interface {
	Exchange(q *dnswire.Message) (*dnswire.Message, error)
}

// Scanner drives the measurement queries.
type Scanner struct {
	Net *simnet.Network
	// Primary and Backup are the public resolvers (8.8.8.8 and 1.1.1.1
	// in the paper).
	Primary netip.Addr
	Backup  netip.Addr
	// Transport, when non-nil, replaces the Primary/Backup stub queries:
	// every scan query goes through it (the encrypted-DNS path, with the
	// public resolvers as members of the transport's upstream pool).
	Transport Transport
	// Whois resolves name-server operators.
	Whois *whois.DB
	// Concurrency bounds parallel domain scans (the paper paces its
	// scans for ethics; here it bounds simulation goroutines).
	Concurrency int

	// qid is the query-ID stream. Atomic, not mutex-guarded: every query
	// of every worker draws from it, so a mutex here serializes the whole
	// scan fan-out.
	qid atomic.Uint32
}

// New creates a scanner using the given resolvers.
func New(net *simnet.Network, primary, backup netip.Addr, db *whois.DB) *Scanner {
	return &Scanner{Net: net, Primary: primary, Backup: backup, Whois: db, Concurrency: 8}
}

// Fork returns a scanner with the same resolvers, WHOIS database, and
// concurrency bound, but running over the given network view, with the
// given transport (nil for bare stub queries) and its own query-ID stream.
// Per-day scan contexts fork the campaign scanner so concurrent days never
// share mutable scanner state.
func (s *Scanner) Fork(net *simnet.Network, transport Transport) *Scanner {
	return &Scanner{
		Net: net, Primary: s.Primary, Backup: s.Backup,
		Transport: transport, Whois: s.Whois, Concurrency: s.Concurrency,
	}
}

func (s *Scanner) nextID() uint16 {
	return uint16(s.qid.Add(1))
}

// ForEach runs fn for every index in [0, n) on a bounded pool of workers
// goroutines (1 runs inline). Callers write results into per-index slots,
// so output order is deterministic regardless of scheduling. It is the one
// fan-out primitive every parallel measurement loop shares — the
// per-domain list scan, NS/ECH/probe passes, the validation census, and
// the campaign's day pipeline.
func ForEach(n, workers int, fn func(i int)) {
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// forEach runs fn over [0, n) on the scanner's own concurrency bound.
func (s *Scanner) forEach(n int, fn func(i int)) {
	ForEach(n, s.Concurrency, fn)
}

// query sends one stub query, falling back to the backup resolver on error
// or SERVFAIL (the paper's Google→Cloudflare fallback). With a Transport
// configured, the query rides the encrypted serving layer instead and
// failover happens inside the transport's upstream pool.
func (s *Scanner) query(name string, t dnswire.Type) (*dnswire.Message, error) {
	q := dnswire.NewQuery(s.nextID(), name, t, true)
	if s.Transport != nil {
		resp, err := s.Transport.Exchange(q)
		if err != nil {
			return nil, err
		}
		if resp.RCode == dnswire.RCodeServFail {
			return nil, fmt.Errorf("scanner: SERVFAIL via transport for %s/%s", name, t)
		}
		return resp, nil
	}
	resp, err := s.Net.QueryDNS(s.Primary, q)
	if err == nil && resp.RCode != dnswire.RCodeServFail {
		return resp, nil
	}
	resp, berr := s.Net.QueryDNS(s.Backup, q)
	if berr == nil && resp.RCode != dnswire.RCodeServFail {
		return resp, nil
	}
	if err == nil {
		err = fmt.Errorf("scanner: SERVFAIL from both resolvers for %s/%s", name, t)
	}
	return nil, err
}

// SummarizeHTTPS converts a wire HTTPS record into the dataset summary.
func SummarizeHTTPS(rr dnswire.RR) (dataset.HTTPSRecord, bool) {
	data, ok := rr.Data.(*dnswire.SVCBData)
	if !ok {
		return dataset.HTTPSRecord{}, false
	}
	out := dataset.HTTPSRecord{
		Priority: data.Priority,
		Target:   data.Target,
	}
	if alpn, ok := data.Params.ALPN(); ok {
		out.ALPN = alpn
	}
	out.NoDefALPN = data.Params.Has(svcb.KeyNoDefaultALPN)
	if port, ok := data.Params.Port(); ok {
		out.Port, out.HasPort = port, true
	}
	if hints, ok := data.Params.IPv4Hints(); ok {
		out.V4Hints = hints
	}
	if hints, ok := data.Params.IPv6Hints(); ok {
		out.V6Hints = hints
	}
	if echBytes, ok := data.Params.ECH(); ok {
		out.HasECH = true
		if configs, err := ech.UnmarshalList(echBytes); err == nil {
			if cfg, err := ech.SelectConfig(configs); err == nil {
				out.ECHConfigID = cfg.ConfigID
				out.ECHKeyHash = hashBytes(cfg.PublicKey)
				out.ECHPublicName = cfg.PublicName
			}
		}
	}
	return out, true
}

func hashBytes(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// ScanDomain performs the full per-domain scan sequence: HTTPS (with CNAME
// chasing), then A/AAAA/SOA/NS when HTTPS records exist.
func (s *Scanner) ScanDomain(name string) *dataset.Observation {
	obs := &dataset.Observation{Name: dnswire.CanonicalName(name)}

	resp, err := s.query(name, dnswire.TypeHTTPS)
	if err != nil {
		obs.Err = err.Error()
		return obs
	}
	obs.AD = resp.AuthenticatedData
	s.extractHTTPS(resp, obs)

	// CNAME chase (§4.1): if the answer contains a CNAME but the resolver
	// did not chase to an HTTPS record, re-query the target explicitly.
	if len(obs.CNAMEChain) > 0 && !obs.HasHTTPS() {
		target := obs.CNAMEChain[len(obs.CNAMEChain)-1]
		if sub, err := s.query(target, dnswire.TypeHTTPS); err == nil {
			s.extractHTTPS(sub, obs)
			obs.AD = obs.AD && sub.AuthenticatedData
		}
	}

	if !obs.HasHTTPS() {
		return obs
	}
	// Follow-up queries for adopters.
	if resp, err := s.query(name, dnswire.TypeA); err == nil {
		for _, rr := range resp.Answer {
			if a, ok := rr.Data.(*dnswire.AData); ok {
				obs.A = append(obs.A, a.Addr)
			}
		}
	}
	if resp, err := s.query(name, dnswire.TypeAAAA); err == nil {
		for _, rr := range resp.Answer {
			if a, ok := rr.Data.(*dnswire.AAAAData); ok {
				obs.AAAA = append(obs.AAAA, a.Addr)
			}
		}
	}
	apex := dnswire.ApexOf(name)
	if resp, err := s.query(apex, dnswire.TypeSOA); err == nil {
		for _, rr := range resp.Answer {
			if rr.Type == dnswire.TypeSOA {
				obs.HasSOA = true
			}
		}
	}
	if resp, err := s.query(apex, dnswire.TypeNS); err == nil {
		for _, rr := range resp.Answer {
			if ns, ok := rr.Data.(*dnswire.NSData); ok {
				obs.NS = append(obs.NS, ns.Host)
			}
		}
	}
	return obs
}

func (s *Scanner) extractHTTPS(resp *dnswire.Message, obs *dataset.Observation) {
	for _, rr := range resp.Answer {
		switch rr.Type {
		case dnswire.TypeHTTPS:
			if sum, ok := SummarizeHTTPS(rr); ok {
				obs.HTTPS = append(obs.HTTPS, sum)
			}
		case dnswire.TypeRRSIG:
			if sig, ok := rr.Data.(*dnswire.RRSIGData); ok && sig.TypeCovered == dnswire.TypeHTTPS {
				obs.Signed = true
			}
		case dnswire.TypeCNAME:
			obs.CNAMEChain = append(obs.CNAMEChain, rr.Data.(*dnswire.CNAMEData).Target)
		}
	}
}

// ScanList scans a ranked domain list concurrently over the bounded worker
// pool, producing a snapshot. kind is "apex" or "www"; for "www" the names
// are prefixed.
func (s *Scanner) ScanList(date time.Time, kind string, list []string) *dataset.Snapshot {
	slots := make([]*dataset.Observation, len(list))
	s.forEach(len(list), func(i int) {
		name := list[i]
		if kind == "www" {
			name = "www." + name
		}
		obs := s.ScanDomain(name)
		obs.Rank = i + 1
		if obs.HasHTTPS() || obs.Err != "" {
			slots[i] = obs
		}
	})
	snap := &dataset.Snapshot{Date: date, Kind: kind, Total: len(list), Obs: map[string]*dataset.Observation{}}
	for _, obs := range slots {
		if obs != nil {
			snap.Obs[obs.Name] = obs
		}
	}
	return snap
}

// ScanNameServers resolves the addresses of every name-server host seen in
// the snapshot and attributes them via WHOIS (§4.2.2 methodology). Hosts
// are scanned in sorted order over the scanner's bounded worker pool.
func (s *Scanner) ScanNameServers(date time.Time, snaps ...*dataset.Snapshot) *dataset.NSSnapshot {
	hostSet := map[string]bool{}
	for _, snap := range snaps {
		for _, obs := range snap.Obs {
			for _, h := range obs.NS {
				hostSet[dnswire.CanonicalName(h)] = true
			}
		}
	}
	hosts := make([]string, 0, len(hostSet))
	for h := range hostSet {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)

	results := make([]*dataset.NSObservation, len(hosts))
	s.forEach(len(hosts), func(i int) {
		nso := &dataset.NSObservation{Host: hosts[i]}
		if resp, err := s.query(hosts[i], dnswire.TypeA); err == nil {
			for _, rr := range resp.Answer {
				if a, ok := rr.Data.(*dnswire.AData); ok {
					nso.Addrs = append(nso.Addrs, a.Addr)
				}
			}
		}
		if s.Whois != nil && len(nso.Addrs) > 0 {
			nso.Org = s.Whois.AttributeNameServer(nso.Addrs[0])
		}
		results[i] = nso
	})
	out := &dataset.NSSnapshot{Date: date, Servers: make(map[string]*dataset.NSObservation, len(hosts))}
	for _, nso := range results {
		out.Servers[nso.Host] = nso
	}
	return out
}

// ECHScan performs one hourly ECH observation pass over the given domains
// (the §4.4.2 experiment). Domains are scanned over the bounded worker
// pool; observations come back in input-domain order.
func (s *Scanner) ECHScan(now time.Time, domains []string) []dataset.ECHObservation {
	slots := make([][]dataset.ECHObservation, len(domains))
	s.forEach(len(domains), func(i int) {
		name := domains[i]
		resp, err := s.query(name, dnswire.TypeHTTPS)
		if err != nil {
			return
		}
		for _, rr := range resp.Answer {
			if rr.Type != dnswire.TypeHTTPS {
				continue
			}
			sum, ok := SummarizeHTTPS(rr)
			if !ok || !sum.HasECH {
				continue
			}
			slots[i] = append(slots[i], dataset.ECHObservation{
				Time:       now,
				Domain:     dnswire.CanonicalName(name),
				ConfigID:   sum.ECHConfigID,
				KeyHash:    sum.ECHKeyHash,
				PublicName: sum.ECHPublicName,
			})
		}
	})
	var out []dataset.ECHObservation
	for _, obs := range slots {
		out = append(out, obs...)
	}
	return out
}

// ProbeMismatches runs the §4.3.5 connectivity experiment: for every
// observation whose IP hints disagree with its A records, TLS-probe both
// addresses. Candidates are probed in sorted domain order over the bounded
// worker pool, so the result slice is deterministic for a snapshot.
func (s *Scanner) ProbeMismatches(date time.Time, snap *dataset.Snapshot, prober Prober) []dataset.ProbeResult {
	names := make([]string, 0, len(snap.Obs))
	for name := range snap.Obs {
		names = append(names, name)
	}
	sort.Strings(names)

	out := make([]dataset.ProbeResult, 0, len(names))
	for _, name := range names {
		obs := snap.Obs[name]
		if !obs.HasHTTPS() || len(obs.A) == 0 {
			continue
		}
		var hints []netip.Addr
		for _, rec := range obs.HTTPS {
			hints = append(hints, rec.V4Hints...)
		}
		if len(hints) == 0 || sameAddrSet(hints, obs.A) {
			continue
		}
		out = append(out, dataset.ProbeResult{
			Date: date, Domain: obs.Name, Mismatch: true,
			HintAddr: hints[0], AAddr: obs.A[0],
		})
	}
	s.forEach(len(out), func(i int) {
		apex := dnswire.ApexOf(out[i].Domain)
		out[i].HintOK = prober.ProbeTLS(apex, out[i].HintAddr) == nil
		out[i].AOK = prober.ProbeTLS(apex, out[i].AAddr) == nil
	})
	return out
}

func sameAddrSet(a, b []netip.Addr) bool {
	if len(a) != len(b) {
		return false
	}
	set := map[netip.Addr]bool{}
	for _, x := range a {
		set[x] = true
	}
	for _, y := range b {
		if !set[y] {
			return false
		}
	}
	return true
}

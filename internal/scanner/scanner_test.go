package scanner

import (
	"net/netip"
	"sort"
	"testing"
	"time"

	"repro/internal/dnswire"
	"repro/internal/providers"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// scanWorld builds a small world + scanner fixture.
func scanWorld(t *testing.T) (*providers.World, *Scanner) {
	t.Helper()
	w, err := providers.BuildWorld(providers.WorldConfig{Size: 1500, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	w.Clock.Set(time.Date(2023, 9, 15, 12, 0, 0, 0, time.UTC))
	return w, New(w.Net, w.GoogleAddr, w.CFResolverAddr, w.Whois)
}

func findApex(w *providers.World, pred func(d *providers.DomainState) bool) string {
	for apex, d := range w.Domains {
		if pred(d) {
			return apex
		}
	}
	return ""
}

func TestScanDomainAdopter(t *testing.T) {
	w, sc := scanWorld(t)
	apex := findApex(w, func(d *providers.DomainState) bool {
		return d.Profile == providers.ProfileCFDefault && !d.ApexCNAME &&
			d.Intermittent == providers.IntermitNone && !d.AdoptDay.After(w.Clock.Now())
	})
	if apex == "" {
		t.Fatal("no adopter found")
	}
	obs := sc.ScanDomain(apex)
	if obs.Err != "" {
		t.Fatalf("scan error: %s", obs.Err)
	}
	if !obs.HasHTTPS() {
		t.Fatal("no HTTPS records observed")
	}
	rec := obs.HTTPS[0]
	if rec.Priority != 1 || rec.Target != "." {
		t.Errorf("CF default shape wrong: %+v", rec)
	}
	if len(rec.V4Hints) == 0 || len(rec.V6Hints) == 0 {
		t.Error("missing IP hints")
	}
	// Follow-up queries populated.
	if len(obs.A) == 0 || len(obs.NS) == 0 || !obs.HasSOA {
		t.Errorf("follow-up data missing: A=%v NS=%v SOA=%v", obs.A, obs.NS, obs.HasSOA)
	}
}

func TestScanDomainNonAdopter(t *testing.T) {
	w, sc := scanWorld(t)
	apex := findApex(w, func(d *providers.DomainState) bool {
		return d.Profile == providers.ProfileNone
	})
	if apex == "" {
		t.Fatal("no non-adopter found")
	}
	obs := sc.ScanDomain(apex)
	if obs.HasHTTPS() {
		t.Error("phantom HTTPS records")
	}
	// No follow-up queries for non-adopters (the paper's protocol).
	if len(obs.A) != 0 || len(obs.NS) != 0 {
		t.Error("follow-up queries issued for non-adopter")
	}
}

func TestScanDomainCNAMEChase(t *testing.T) {
	w, sc := scanWorld(t)
	apex := findApex(w, func(d *providers.DomainState) bool { return d.ApexCNAME })
	if apex == "" {
		t.Skip("no apex-CNAME domain at this scale")
	}
	obs := sc.ScanDomain(apex)
	if len(obs.CNAMEChain) == 0 {
		t.Error("CNAME chain not recorded")
	}
	if !obs.HasHTTPS() {
		t.Error("HTTPS record not found through CNAME")
	}
}

func TestScanDomainECHSummary(t *testing.T) {
	w, sc := scanWorld(t)
	w.Clock.Set(time.Date(2023, 7, 1, 12, 0, 0, 0, time.UTC)) // ECH active
	apex := findApex(w, func(d *providers.DomainState) bool {
		return d.ECH && d.Profile == providers.ProfileCFDefault && !d.ApexCNAME &&
			d.Intermittent == providers.IntermitNone && !d.AdoptDay.After(w.Clock.Now())
	})
	if apex == "" {
		t.Fatal("no ECH domain")
	}
	obs := sc.ScanDomain(apex)
	if !obs.HasHTTPS() || !obs.HTTPS[0].HasECH {
		t.Fatal("ECH not observed")
	}
	if obs.HTTPS[0].ECHPublicName != "cloudflare-ech.com" {
		t.Errorf("public name = %q", obs.HTTPS[0].ECHPublicName)
	}
	if obs.HTTPS[0].ECHKeyHash == 0 {
		t.Error("key hash not computed")
	}
}

func TestScanListCountsAndRanks(t *testing.T) {
	w, sc := scanWorld(t)
	list := w.Tranco.ListFor(w.Clock.Now())[:300]
	snap := sc.ScanList(w.Clock.Now(), "apex", list)
	if snap.Total != 300 {
		t.Errorf("Total = %d", snap.Total)
	}
	if len(snap.Obs) == 0 {
		t.Fatal("no adopters in 300 domains")
	}
	for name, obs := range snap.Obs {
		if obs.Rank < 1 || obs.Rank > 300 {
			t.Errorf("%s rank = %d", name, obs.Rank)
		}
	}
	// www variant prefixes names.
	wsnap := sc.ScanList(w.Clock.Now(), "www", list[:50])
	for name := range wsnap.Obs {
		if len(name) < 4 || name[:4] != "www." {
			t.Errorf("www obs key %q not prefixed", name)
		}
	}
}

func TestScanNameServers(t *testing.T) {
	w, sc := scanWorld(t)
	list := w.Tranco.ListFor(w.Clock.Now())[:300]
	snap := sc.ScanList(w.Clock.Now(), "apex", list)
	ns := sc.ScanNameServers(w.Clock.Now(), snap)
	if len(ns.Servers) == 0 {
		t.Fatal("no name servers observed")
	}
	cloudflareSeen := false
	for _, nso := range ns.Servers {
		if len(nso.Addrs) == 0 {
			t.Errorf("NS %s unresolved", nso.Host)
		}
		if nso.Org == "Cloudflare" {
			cloudflareSeen = true
		}
	}
	if !cloudflareSeen {
		t.Error("Cloudflare NS not attributed")
	}
}

func TestResolverFallback(t *testing.T) {
	w, sc := scanWorld(t)
	apex := findApex(w, func(d *providers.DomainState) bool {
		return d.Profile == providers.ProfileCFDefault && !d.ApexCNAME &&
			d.Intermittent == providers.IntermitNone && !d.AdoptDay.After(w.Clock.Now())
	})
	// Take the primary resolver down: the scanner must fall back to the
	// backup (1.1.1.1), as the paper's framework does.
	w.Net.SetAddrDown(w.GoogleAddr, true)
	obs := sc.ScanDomain(apex)
	if obs.Err != "" || !obs.HasHTTPS() {
		t.Errorf("fallback scan failed: %+v", obs)
	}
	// Both down: error recorded, no panic.
	w.Net.SetAddrDown(w.CFResolverAddr, true)
	obs = sc.ScanDomain(apex)
	if obs.Err == "" {
		t.Error("error not recorded with both resolvers down")
	}
}

// TestScanViaDoHTransport routes the scanner through an encrypted-DNS
// fleet (a DoH and a DoT frontend over the public recursors, shared
// cache) and checks the full scan sequence still works — including when
// simnet failure injection takes one frontend down mid-campaign.
func TestScanViaDoHTransport(t *testing.T) {
	w, sc := scanWorld(t)
	fl := transport.NewFleet(w.Net, w.Clock, transport.FleetConfig{
		Balance: transport.BalanceRoundRobin, Seed: 5,
	})
	cache := fl.Cache
	addrs := make([]netip.AddrPort, 2)
	protos := []transport.Protocol{transport.ProtoDoH, transport.ProtoDoT}
	for i, handler := range []simnet.DNSHandler{w.GoogleResolver, w.CFResolver} {
		addrs[i] = netip.AddrPortFrom(w.Alloc.AllocV4("DoHFrontend"), protos[i].Port())
		fl.Add(protos[i], "fe", handler, addrs[i])
	}
	sc.Transport = fl.Client

	apex := findApex(w, func(d *providers.DomainState) bool {
		return d.Profile == providers.ProfileCFDefault && !d.ApexCNAME &&
			d.Intermittent == providers.IntermitNone && !d.AdoptDay.After(w.Clock.Now())
	})
	obs := sc.ScanDomain(apex)
	if obs.Err != "" || !obs.HasHTTPS() {
		t.Fatalf("DoH-transport scan failed: %+v", obs)
	}
	if len(obs.A) == 0 || len(obs.NS) == 0 || !obs.HasSOA {
		t.Errorf("follow-up data missing over DoH: %+v", obs)
	}

	// Re-scanning the same domain must be absorbed by the shared cache.
	before := cache.Stats().Hits
	if obs := sc.ScanDomain(apex); obs.Err != "" {
		t.Fatalf("second scan failed: %s", obs.Err)
	}
	if cache.Stats().Hits == before {
		t.Error("second scan produced no shared-cache hits")
	}

	// One frontend down: scans keep working through the survivor.
	w.Net.SetAddrDown(addrs[0].Addr(), true)
	apex2 := findApex(w, func(d *providers.DomainState) bool {
		return d.Profile == providers.ProfileCFCustom && !d.ApexCNAME &&
			d.Intermittent == providers.IntermitNone && !d.AdoptDay.After(w.Clock.Now())
	})
	if apex2 == "" {
		apex2 = apex
	}
	if obs := sc.ScanDomain(apex2); obs.Err != "" || !obs.HasHTTPS() {
		t.Errorf("scan with one frontend down failed: %+v", obs)
	}

	// Whole fleet dark: the scan records an error rather than panicking.
	w.Net.SetAddrDown(addrs[1].Addr(), true)
	if obs := sc.ScanDomain(apex2); obs.Err == "" {
		t.Error("no error recorded with the whole DoH fleet down")
	}
}

func TestECHScanAndProbe(t *testing.T) {
	w, sc := scanWorld(t)
	w.Clock.Set(time.Date(2023, 7, 21, 0, 0, 0, 0, time.UTC))
	var echDomains []string
	for apex, d := range w.Domains {
		if d.ECH && !d.ApexCNAME && d.Intermittent == providers.IntermitNone &&
			!d.AdoptDay.After(w.Clock.Now()) {
			echDomains = append(echDomains, apex)
		}
		if len(echDomains) == 5 {
			break
		}
	}
	if len(echDomains) == 0 {
		t.Fatal("no eligible ECH domains")
	}
	obs := sc.ECHScan(w.Clock.Now(), echDomains)
	if len(obs) == 0 {
		t.Fatal("no ECH observations")
	}
	for _, o := range obs {
		if o.KeyHash == 0 || o.PublicName == "" {
			t.Errorf("incomplete observation: %+v", o)
		}
	}
}

func TestProbeMismatches(t *testing.T) {
	w, sc := scanWorld(t)
	// Pick a mismatch episode and set the clock inside it.
	var target *providers.DomainState
	for _, d := range w.Domains {
		if len(d.MismatchEpisodes) > 0 && d.Intermittent == providers.IntermitNone &&
			d.Profile == providers.ProfileCFDefault && !d.ApexCNAME {
			target = d
			break
		}
	}
	if target == nil {
		t.Fatal("no mismatch domain")
	}
	ep := target.MismatchEpisodes[0]
	mid := ep.From.Add(ep.To.Sub(ep.From) / 2)
	w.Clock.Set(mid)
	snap := sc.ScanList(mid, "apex", []string{trimDot(target.Apex)})
	probes := sc.ProbeMismatches(mid, snap, w)
	if len(probes) != 1 {
		t.Fatalf("probes = %d, want 1", len(probes))
	}
	p := probes[0]
	if !p.Mismatch {
		t.Error("mismatch not flagged")
	}
	if p.HintOK != target.HintReachable || p.AOK != target.AReachable {
		t.Errorf("reachability: got hint=%v a=%v, want %v/%v",
			p.HintOK, p.AOK, target.HintReachable, target.AReachable)
	}
}

func trimDot(s string) string {
	if len(s) > 0 && s[len(s)-1] == '.' {
		return s[:len(s)-1]
	}
	return s
}

func TestSummarizeHTTPSNonSVCB(t *testing.T) {
	rr := dnswire.RR{Name: "a.com.", Type: dnswire.TypeA, Class: dnswire.ClassINET,
		Data: &dnswire.AData{}}
	if _, ok := SummarizeHTTPS(rr); ok {
		t.Error("non-SVCB record summarised")
	}
}

// TestScannerForkIsolation checks a forked scanner shares configuration but
// not mutable state: separate query-ID streams, separate transports.
func TestScannerForkIsolation(t *testing.T) {
	w, sc := scanWorld(t)
	sc.Concurrency = 3
	dayClock := simnet.NewClock(w.Clock.Now().Add(24 * time.Hour))
	view := w.Net.WithClock(dayClock)
	f := sc.Fork(view, nil)
	if f.Net != view || f.Primary != sc.Primary || f.Backup != sc.Backup ||
		f.Whois != sc.Whois || f.Concurrency != 3 {
		t.Error("fork did not copy configuration")
	}
	if f.Transport != nil {
		t.Error("fork inherited a transport it was not given")
	}
	// Independent ID streams: both start at 1.
	if id := sc.nextID(); id != 1 {
		t.Errorf("parent first id = %d", id)
	}
	if id := f.nextID(); id != 1 {
		t.Errorf("fork first id = %d", id)
	}
}

// TestECHScanDeterministicOrder verifies the parallel ECH scan emits
// observations in input-domain order regardless of worker scheduling.
func TestECHScanDeterministicOrder(t *testing.T) {
	w, sc := scanWorld(t)
	w.Clock.Set(time.Date(2023, 7, 21, 0, 0, 0, 0, time.UTC))
	var echDomains []string
	for apex, d := range w.Domains {
		if d.ECH && !d.ApexCNAME && d.Intermittent == providers.IntermitNone &&
			!d.AdoptDay.After(w.Clock.Now()) {
			echDomains = append(echDomains, apex)
		}
	}
	if len(echDomains) < 4 {
		t.Skip("not enough ECH domains at this size/seed")
	}
	sort.Strings(echDomains)
	first := sc.ECHScan(w.Clock.Now(), echDomains)
	for run := 0; run < 3; run++ {
		again := sc.ECHScan(w.Clock.Now(), echDomains)
		if len(again) != len(first) {
			t.Fatalf("run %d: %d observations, want %d", run, len(again), len(first))
		}
		for i := range again {
			if again[i] != first[i] {
				t.Fatalf("run %d: observation %d differs: %+v vs %+v", run, i, again[i], first[i])
			}
		}
	}
}

// TestScanNameServersDeterministic verifies repeated parallel NS scans of
// the same snapshot produce identical snapshots.
func TestScanNameServersDeterministic(t *testing.T) {
	w, sc := scanWorld(t)
	list := w.Tranco.ListFor(w.Clock.Now())[:200]
	snap := sc.ScanList(w.Clock.Now(), "apex", list)
	first := sc.ScanNameServers(w.Clock.Now(), snap)
	if len(first.Servers) == 0 {
		t.Fatal("no NS observations")
	}
	again := sc.ScanNameServers(w.Clock.Now(), snap)
	if len(again.Servers) != len(first.Servers) {
		t.Fatalf("server counts differ: %d vs %d", len(again.Servers), len(first.Servers))
	}
	for host, nso := range first.Servers {
		b, ok := again.Servers[host]
		if !ok || b.Org != nso.Org || len(b.Addrs) != len(nso.Addrs) {
			t.Errorf("host %s differs across runs: %+v vs %+v", host, nso, b)
		}
	}
}

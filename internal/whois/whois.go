// Package whois models the WHOIS IP-attribution database the paper uses to
// map name-server addresses to operating organisations (§4.2.2), including
// the BYOIP caveat where WHOIS shows the original block owner rather than
// the provider actually operating the address.
package whois

import (
	"errors"
	"net/netip"
	"sync"

	"repro/internal/simnet"
)

// ErrNotFound indicates the address has no WHOIS allocation.
var ErrNotFound = errors.New("whois: no allocation for address")

// Record is the result of a WHOIS lookup for an IP address.
type Record struct {
	// Org is the registered owner organisation of the address block.
	Org string
	// ASNDescription mimics the free-text network description field that
	// needs manual review in the paper's methodology.
	ASNDescription string
}

// OrgInfo captures what the paper's manual review established per
// organisation.
type OrgInfo struct {
	Name string
	// IsDNSProvider marks organisations operating managed DNS (vs. pure
	// cloud hosting where customers run their own name servers).
	IsDNSProvider bool
	// IsCloudHost marks hosting providers whose address space may carry
	// customer-operated name servers (the AWS case in §4.2.2).
	IsCloudHost bool
}

// DB is a WHOIS database over the simnet allocator.
type DB struct {
	alloc *simnet.Allocator

	mu   sync.RWMutex
	orgs map[string]OrgInfo
}

// New creates a WHOIS database reading allocations from alloc.
func New(alloc *simnet.Allocator) *DB {
	return &DB{alloc: alloc, orgs: map[string]OrgInfo{}}
}

// RegisterOrg records organisation metadata used by attribution.
func (db *DB) RegisterOrg(info OrgInfo) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.orgs[info.Name] = info
}

// Lookup returns the WHOIS record for an address.
func (db *DB) Lookup(addr netip.Addr) (Record, error) {
	org, ok := db.alloc.Owner(addr)
	if !ok {
		return Record{}, ErrNotFound
	}
	return Record{Org: org, ASNDescription: org + " network"}, nil
}

// Org returns the metadata for an organisation, if registered.
func (db *DB) Org(name string) (OrgInfo, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	info, ok := db.orgs[name]
	return info, ok
}

// AttributeNameServer applies the paper's attribution methodology to a name
// server address: WHOIS lookup plus the manual-review rule that cloud-host
// space does not imply the cloud provider operates the server. It returns
// the provider organisation name, or "" when attribution is inconclusive.
func (db *DB) AttributeNameServer(addr netip.Addr) string {
	rec, err := db.Lookup(addr)
	if err != nil {
		return ""
	}
	db.mu.RLock()
	info, known := db.orgs[rec.Org]
	db.mu.RUnlock()
	if known && info.IsCloudHost && !info.IsDNSProvider {
		// Customer-operated name server hosted in cloud space: the WHOIS
		// org is not the DNS provider.
		return ""
	}
	return rec.Org
}

package whois

import (
	"errors"
	"net/netip"
	"testing"

	"repro/internal/simnet"
)

func TestLookup(t *testing.T) {
	alloc := simnet.NewAllocator()
	db := New(alloc)
	addr := alloc.AllocV4("Cloudflare")
	rec, err := db.Lookup(addr)
	if err != nil || rec.Org != "Cloudflare" {
		t.Fatalf("Lookup = %+v, %v", rec, err)
	}
	if _, err := db.Lookup(netip.MustParseAddr("203.0.113.1")); !errors.Is(err, ErrNotFound) {
		t.Errorf("unallocated lookup err = %v", err)
	}
}

func TestAttributeNameServer(t *testing.T) {
	alloc := simnet.NewAllocator()
	db := New(alloc)
	db.RegisterOrg(OrgInfo{Name: "GoDaddy", IsDNSProvider: true})
	db.RegisterOrg(OrgInfo{Name: "AWS", IsCloudHost: true})

	dnsAddr := alloc.AllocV4("GoDaddy")
	if org := db.AttributeNameServer(dnsAddr); org != "GoDaddy" {
		t.Errorf("DNS provider attribution = %q", org)
	}
	// Cloud-host space: customer-operated NS, attribution inconclusive
	// (the paper's AWS caveat).
	cloudAddr := alloc.AllocV4("AWS")
	if org := db.AttributeNameServer(cloudAddr); org != "" {
		t.Errorf("cloud-host attribution = %q, want inconclusive", org)
	}
	// Unknown org (no metadata): attributed as-is.
	otherAddr := alloc.AllocV4("SomeOrg")
	if org := db.AttributeNameServer(otherAddr); org != "SomeOrg" {
		t.Errorf("unknown-org attribution = %q", org)
	}
	// Unallocated: inconclusive.
	if org := db.AttributeNameServer(netip.MustParseAddr("203.0.113.9")); org != "" {
		t.Errorf("unallocated attribution = %q", org)
	}
}

func TestBYOIPAttribution(t *testing.T) {
	alloc := simnet.NewAllocator()
	db := New(alloc)
	db.RegisterOrg(OrgInfo{Name: "NSONE", IsDNSProvider: true})
	addr := alloc.AllocV4("NSONE")
	// The customer brought their own IP: WHOIS shows the original owner.
	alloc.SetOwner(addr, "OriginalOwnerCo")
	if org := db.AttributeNameServer(addr); org != "OriginalOwnerCo" {
		t.Errorf("BYOIP attribution = %q (WHOIS limitation should surface)", org)
	}
}

func TestOrgMetadata(t *testing.T) {
	db := New(simnet.NewAllocator())
	db.RegisterOrg(OrgInfo{Name: "X", IsDNSProvider: true})
	info, ok := db.Org("X")
	if !ok || !info.IsDNSProvider {
		t.Errorf("Org = %+v, %v", info, ok)
	}
	if _, ok := db.Org("Y"); ok {
		t.Error("unknown org found")
	}
}

// Command browsertest runs the paper's §5 client-side experiments: it
// builds the controlled testbed (authoritative zone + web endpoints) and
// measures how each browser model handles HTTPS records and ECH, printing
// Tables 6 and 7 plus the failover matrix. Use -verbose to see every
// connection attempt.
package main

import (
	"flag"
	"fmt"

	"repro/internal/browser"
)

func main() {
	verbose := flag.Bool("verbose", false, "print each visit's attempt log")
	flag.Parse()

	behaviors := browser.All()
	suites := []struct {
		title     string
		scenarios []browser.Scenario
	}{
		{"Table 6: HTTPS RR support from four major browsers", browser.Table6Scenarios()},
		{"Table 7: browser support and failover mechanisms of ECH", browser.Table7Scenarios()},
		{"§5.2.2: failover behaviours", browser.FailoverScenarios()},
	}
	for _, suite := range suites {
		t, _ := browser.RunMatrix(suite.title, suite.scenarios, behaviors)
		fmt.Println(t.Format())
		if *verbose {
			for _, sc := range suite.scenarios {
				for _, b := range behaviors {
					l := browser.NewLab()
					sc.Build(l)
					v := l.Visit(b, sc.URL)
					fmt.Printf("  %-28s %-8s %s\n", sc.Row, b.Name, v)
				}
			}
			fmt.Println()
		}
	}
	fmt.Println("legend: ● full support  ◐ fetched but unused  ○ no support / failure")
}

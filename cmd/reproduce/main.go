// Command reproduce regenerates every table and figure of the paper's
// evaluation from a fresh simulated campaign.
//
// Usage:
//
//	reproduce [-size N] [-seed S] [-step D] [-dayworkers W] [-hourworkers W]
//	          [-frontends N] [-mix doh|dot|doq|mixed]
//	          [-strategy serial|race|hedge] [-minobs N]
//	          [-exp all|fig2|tab2|tab3|fig3|
//	          intermittency|tab4|tab5|params|tab8|fig11|fig12|connectivity|
//	          fig13|fig4|fig5|tab9|fig14|fig8|stalecorr|timeline|slo|
//	          tab6|tab7|failover]
//
// Larger -size values converge the percentages to the paper's (the
// non-Cloudflare population floor dominates below ~90k domains); -step
// trades trend resolution for runtime; -dayworkers pipelines that many
// scan days concurrently and -hourworkers does the same for the hourly
// ECH rotation scans (results are identical for any value of either);
// -frontends routes every scan through an encrypted-DNS serving fleet
// with the -mix protocol split and the -strategy resolution strategy
// (results are again identical — the serving layer is transparent to
// the measurements, whichever frontend wins each exchange).
//
// -minobs sweeps the §4.2.3 intermittency classification gate: domains
// observed on fewer in-list days are skipped (reported as sparse) rather
// than classified. -exp stalecorr emits the §4.4.2 staleness/ECH
// correlation table, joining per-day serving snapshots (needs
// -frontends) against the hourly ECH scans.
//
// -exp timeline renders the campaign's telemetry time-series: the fleet
// registry's stable per-exchange metrics sampled at every scan-stage
// boundary (plus hourly samples during the ECH rotation experiment when
// that also runs). It needs a fleet; selecting it explicitly with
// -frontends 0 auto-enables 4 frontends. The curves are deterministic
// for a seed and identical for any -dayworkers value.
//
// -exp slo turns on the campaign's anomaly tier (flight recorder,
// tail-sampled traces, and obs.DefaultSLO objectives on every per-day
// fleet replica) and renders the per-day anomaly-capture table: the
// stable SLO verdict plus the day's flight-recorder evidence. Like
// timeline it needs a fleet and auto-enables 4 frontends when selected
// explicitly; the captures are identical for any -dayworkers value.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/browser"
	"repro/internal/core"
	"repro/internal/providers"
	"repro/internal/transport"
)

func main() {
	size := flag.Int("size", 10_000, "Tranco list size of the generated world")
	seed := flag.Int64("seed", 2024, "generation seed")
	step := flag.Int("step", 7, "scan every Nth day")
	dayWorkers := flag.Int("dayworkers", runtime.GOMAXPROCS(0),
		"scan days resolved concurrently (1 = serial; results are identical)")
	hourWorkers := flag.Int("hourworkers", runtime.GOMAXPROCS(0),
		"hourly ECH scan hours resolved concurrently (1 = serial; results are identical)")
	frontends := flag.Int("frontends", 0, "encrypted-DNS frontends to scan through (0: direct stub queries)")
	mixFlag := flag.String("mix", "doh", "frontend protocol mix (with -frontends): doh, dot, doq, mixed, or weights")
	strategyFlag := flag.String("strategy", "serial", "resolution strategy (with -frontends): serial, race, or hedge")
	minObs := flag.Int("minobs", analysis.DefaultIntermittencyMinObs,
		"intermittency classification gate: minimum observed in-list days")
	exp := flag.String("exp", "all", "experiment selector (comma-separated ids or 'all')")
	quiet := flag.Bool("q", false, "suppress per-day progress")
	flag.Parse()

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	sel := func(id string) bool { return want["all"] || want[id] }

	serverSide := false
	for _, id := range []string{"fig2", "tab2", "tab3", "fig3", "intermittency", "tab4",
		"tab5", "params", "tab8", "fig11", "fig12", "connectivity", "fig13", "fig4",
		"fig5", "tab9", "fig14", "fig8", "stalecorr", "timeline", "slo"} {
		if sel(id) {
			serverSide = true
		}
	}
	// The telemetry timeline needs a fleet for its registry; explicit
	// selection turns one on rather than rendering an empty table (under
	// "all" it simply rides whatever -frontends says).
	if want["timeline"] && *frontends == 0 {
		fmt.Fprintln(os.Stderr, "timeline: enabling 4 frontends (the telemetry series need a fleet)")
		*frontends = 4
	}
	if want["slo"] && *frontends == 0 {
		fmt.Fprintln(os.Stderr, "slo: enabling 4 frontends (anomaly captures need a fleet)")
		*frontends = 4
	}

	mix, err := transport.ParseMix(*mixFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	strategy, err := transport.ParseStrategy(*strategyFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if serverSide {
		runServerSide(*size, *seed, *step, *dayWorkers, *hourWorkers, *frontends, mix, strategy, *minObs, *quiet, sel)
	}
	if sel("tab6") || sel("tab7") || sel("failover") {
		runClientSide(sel)
	}
}

func runServerSide(size int, seed int64, step, dayWorkers, hourWorkers, frontends int, mix transport.Mix, strategy transport.StrategyKind, minObs int, quiet bool, sel func(string) bool) {
	cfg := core.CampaignConfig{Size: size, Seed: seed, StepDays: step, DayWorkers: dayWorkers,
		HourWorkers:  hourWorkers,
		DoHFrontends: frontends, TransportMix: mix, TransportStrategy: strategy}
	if sel("timeline") && frontends > 0 {
		cfg.TelemetryInterval = time.Hour
	}
	if sel("slo") && frontends > 0 {
		cfg.AnomalyCapture = true
	}
	if !quiet {
		cfg.Progress = os.Stderr
	}
	// Reports are strategy-tagged when a fleet is in the loop, so runs
	// through different resolution strategies are distinguishable.
	fleet := ""
	if frontends > 0 {
		fleet = fmt.Sprintf(" frontends=%d mix=%s strategy=%s", frontends, mix, strategy)
	}
	fmt.Fprintf(os.Stderr, "building world: size=%d seed=%d step=%dd dayworkers=%d hourworkers=%d%s\n",
		size, seed, step, dayWorkers, hourWorkers, fleet)
	c, err := core.NewCampaign(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	start := time.Now()
	if err := c.RunDaily(); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "daily campaign done in %v (%d DNS queries)\n",
		time.Since(start).Round(time.Second), c.World.Net.QueryCount())

	if sel("fig4") || sel("stalecorr") {
		c.RunHourlyECH(time.Date(2023, 7, 21, 0, 0, 0, 0, time.UTC), 7)
	}
	if sel("tab9") {
		c.RunValidationCensus(time.Date(2024, 1, 2, 0, 0, 0, 0, time.UTC))
	}

	st := c.Store
	phase1, phase2 := analysis.OverlappingSets(st)

	print := func(id string, tables ...*analysis.Table) {
		if !sel(id) {
			return
		}
		for _, t := range tables {
			fmt.Println(t.Format())
		}
	}

	if sel("fig2") {
		print("fig2", analysis.Adoption(st).Tables()...)
	}
	print("tab2", analysis.NSCategories(st, nil).Table("dynamic"),
		analysis.NSCategories(st, phase2).Table("overlapping"))
	nonCF := analysis.NonCFProviders(st, nil)
	print("tab3", nonCF.Table(10))
	print("fig3", analysis.SeriesTable("Fig 3: distinct non-Cloudflare providers with HTTPS RR", 20, nonCF.DailyDistinct))
	if sel("intermittency") {
		inter := analysis.IntermittencyMinObs(st, minObs)
		fmt.Println(inter.Table().Format())
		if inter.MinObservations > analysis.DefaultIntermittencyMinObs {
			fmt.Printf("intermittency gate: minobs=%d skipped %d sparse histories\n\n",
				inter.MinObservations, inter.SparseSkipped)
		}
	}
	print("tab4", analysis.DefaultVsCustom(st, nil).Table("dynamic"),
		analysis.DefaultVsCustom(st, phase2).Table("overlapping"))
	if sel("tab5") {
		google := analysis.ProviderParams(st, "Google")
		godaddy := analysis.ProviderParams(st, "GoDaddy")
		fmt.Println(analysis.Table5(google, godaddy).Format())
	}
	print("params", analysis.SvcParams(st, "apex").Table("apex"),
		analysis.SvcParams(st, "www").Table("www"))
	print("tab8", analysis.ALPN(st, "apex", phase2, providers.H3Draft29SunsetDate).Table(),
		analysis.ALPN(st, "www", phase2, providers.H3Draft29SunsetDate).Table())
	if sel("fig11") {
		print("fig11", analysis.HintUsage(st, "apex").Tables()...)
	}
	print("fig12", analysis.MismatchDurations(st, "apex").Table())
	print("connectivity", analysis.Connectivity(st).Table())
	print("fig13", analysis.ECHDeployment(st, nil).Table())
	print("fig4", analysis.ECHRotation(st).Table())
	if sel("fig5") {
		for _, t := range analysis.Signed(st, nil).Tables("dynamic") {
			fmt.Println(t.Format())
		}
		for _, t := range analysis.Signed(st, phase2).Tables("overlapping") {
			fmt.Println(t.Format())
		}
	}
	print("tab9", analysis.Census(st).Table())
	print("stalecorr", analysis.StaleECHCorrelation(st).Table())
	if sel("timeline") && frontends > 0 {
		fmt.Println(analysis.TelemetryTimeline(st, "daily").Format())
		if sel("fig4") || sel("stalecorr") {
			fmt.Println(analysis.TelemetryTimeline(st, "hourly-ech").Format())
		}
	}
	if sel("slo") && frontends > 0 {
		fmt.Println(analysis.AnomalyReport(st).Format())
	}
	print("fig14", analysis.SignedECH(st, nil).Table())
	if sel("fig8") {
		stats := analysis.RankDistributions(st, phase1)
		stats = append(stats, analysis.NonCFRankings(st))
		fmt.Println(analysis.RankTable("Fig 8/9: rank distributions", stats...).Format())
	}
}

func runClientSide(sel func(string) bool) {
	behaviors := browser.All()
	if sel("tab6") {
		t, _ := browser.RunMatrix("Table 6: browser HTTPS RR support", browser.Table6Scenarios(), behaviors)
		fmt.Println(t.Format())
	}
	if sel("tab7") {
		t, _ := browser.RunMatrix("Table 7: browser ECH support and failover", browser.Table7Scenarios(), behaviors)
		fmt.Println(t.Format())
	}
	if sel("failover") {
		t, _ := browser.RunMatrix("§5.2.2: failover behaviours", browser.FailoverScenarios(), behaviors)
		fmt.Println(t.Format())
	}
}

// Command dohserve stands up an encrypted-DNS serving fleet over a
// simulated world and drives a concurrent query load through it: N DoH
// frontends wrapping the public recursors, a shared sharded answer cache,
// and a load-balanced upstream pool with failover. It reports per-frontend
// traffic, pool health, cache efficiency, and end-to-end throughput —
// the fleet-scale workload view of the serving layer.
//
// Usage:
//
//	dohserve [-size N] [-seed S] [-frontends N] [-strategy p2|ewma|roundrobin|hash]
//	         [-queries N] [-workers N] [-shards N] [-shardcap N] [-hot N]
//	         [-kill N] [-post]
//
// -kill marks that many frontend addresses unreachable halfway through
// the load, exercising failover under fire.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dnswire"
	"repro/internal/doh"
)

func main() {
	size := flag.Int("size", 3000, "Tranco list size of the generated world")
	seed := flag.Int64("seed", 1, "generation seed")
	frontends := flag.Int("frontends", 4, "number of DoH frontends")
	strategyName := flag.String("strategy", "p2", "load-balancing strategy (p2, ewma, roundrobin, hash)")
	queries := flag.Int("queries", 2000, "total queries to drive")
	workers := flag.Int("workers", 8, "concurrent stub workers")
	shards := flag.Int("shards", doh.DefaultShards, "answer-cache shard count")
	shardCap := flag.Int("shardcap", doh.DefaultShardCapacity, "answer-cache entries per shard")
	hot := flag.Int("hot", 500, "working-set size (distinct names cycled through)")
	kill := flag.Int("kill", 1, "frontends to mark unreachable halfway through")
	post := flag.Bool("post", false, "use POST envelopes instead of GET")
	flag.Parse()

	strategy, err := doh.ParseStrategy(*strategyName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *workers < 1 {
		*workers = 1
	}
	if *frontends < 1 {
		fmt.Fprintln(os.Stderr, "dohserve: -frontends must be at least 1")
		os.Exit(2)
	}

	// The campaign builds the world and the fleet with the same wiring
	// the measurement runs use; here only the fleet is driven.
	camp, err := core.NewCampaign(core.CampaignConfig{
		Size: *size, Seed: *seed,
		DoHFrontends: *frontends, DoHStrategy: strategy,
		DoHShards: *shards, DoHShardCap: *shardCap,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	world, client, pool, cache := camp.World, camp.DoHClient, camp.DoHPool, camp.DoHCache
	client.UsePOST = *post
	day := time.Date(2023, 9, 1, 12, 0, 0, 0, time.UTC)
	world.Clock.Set(day)

	list := world.Tranco.ListFor(day)
	if *hot > 0 && *hot < len(list) {
		list = list[:*hot]
	}
	fmt.Printf("world: %d domains (working set %d); fleet: %d frontends, strategy %s, cache %d×%d\n",
		*size, len(list), *frontends, strategy, *shards, *shardCap)

	var ok, failed atomic.Uint64
	var killOnce sync.Once
	jobs := make(chan string)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for name := range jobs {
				if _, err := client.Query(name, dnswire.TypeHTTPS, true); err != nil {
					failed.Add(1)
				} else {
					ok.Add(1)
				}
			}
		}()
	}
	for i := 0; i < *queries; i++ {
		if i == *queries/2 && *kill > 0 {
			killOnce.Do(func() {
				stats := pool.Stats()
				for k := 0; k < *kill && k < len(stats); k++ {
					world.Net.SetAddrDown(stats[k].Addr.Addr(), true)
					fmt.Printf("halfway: frontend %s (%v) marked unreachable\n",
						stats[k].Name, stats[k].Addr)
				}
			})
		}
		jobs <- list[i%len(list)]
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("\n%d queries in %s (%.0f q/s): %d answered, %d failed\n",
		*queries, elapsed.Round(time.Millisecond),
		float64(*queries)/elapsed.Seconds(), ok.Load(), failed.Load())

	fmt.Println("\nfrontends:")
	for _, s := range camp.DoHServers {
		st := s.Stats()
		fmt.Printf("  %-20s served %6d  cache hits %6d\n", st.Name, st.Served, st.CacheHits)
	}
	fmt.Println("\npool:")
	for _, st := range pool.Stats() {
		fmt.Printf("  %-20s queries %6d  failures %3d  down=%-5v rtt=%s\n",
			st.Name, st.Queries, st.Failures, st.Down, st.RTT.Round(time.Microsecond))
	}
	cs := cache.Stats()
	fmt.Printf("\nshared cache: %d entries, %d hits / %d misses (%.1f%% hit rate), %d evictions\n",
		cs.Entries, cs.Hits, cs.Misses, 100*cs.HitRate(), cs.Evictions)
	fmt.Printf("recursor-side queries (incl. iterative lookups): %d\n", world.Net.QueryCount())
}

// Command dohserve stands up an encrypted-DNS serving fleet over a
// simulated world and drives a concurrent query load through it: N
// frontends — any mix of DoH, DoT, and DoQ envelopes — wrapping the
// public recursors, a shared sharded answer cache, and a load-balanced
// upstream pool with failover. It reports per-frontend and per-protocol
// traffic, pool health, cache efficiency, and end-to-end throughput —
// the fleet-scale workload view of the serving layer.
//
// Usage:
//
//	dohserve [-size N] [-seed S] [-frontends N] [-proto doh|dot|doq|mixed]
//	         [-strategy serial|race|hedge] [-stagger D] [-hedgeq F]
//	         [-balance p2|ewma|roundrobin|hash]
//	         [-queries N] [-workers N] [-shards N] [-shardcap N] [-hot N]
//	         [-kill N] [-post] [-trace N] [-tail K] [-taillat D]
//	         [-stalewindow D] [-refreshahead F] [-cooldown D]
//	         [-chaos] [-epochs N] [-epochlen D] [-flap P]
//	         [-load] [-clients N] [-loadmodel closed|open] [-rate F] [-think D]
//	         [-zipf S] [-loaddur D] [-loadqueries N] [-stubttl D]
//	         [-loadinterval D] [-diurnal A] [-peak D]
//	         [-crowdmult F] [-crowdat D] [-crowddur D] [-crowddomain NAME] [-crowdfrac F]
//
// -proto selects the fleet's envelope mix: a single protocol, the
// shorthand "mixed" (2:1:1 DoH:DoT:DoQ), or explicit weights like
// doh=60,dot=30,doq=10. All protocols share the same cache, pool, and
// recursors, so the report compares them on equal footing.
//
// -strategy selects the stub's resolution strategy: serial failover,
// happy-eyeballs protocol racing (-stagger sets the head start), or
// quantile-armed hedged queries (-hedgeq sets the arming quantile);
// -balance independently selects the pool's load-balancing policy. The
// report shows the strategy's winner-protocol distribution and its
// wasted-query overhead (duplicate attempts whose answers were
// discarded) — run -proto mixed -strategy race to watch the
// happy-eyeballs split. The drive layers a deterministic 1-in-8 latency
// tail over the synthetic per-member RTTs so the tail-sensitive
// strategies have something to react to.
//
// -kill marks that many frontend addresses unreachable halfway through
// the load, exercising failover under fire.
//
// -trace samples every exchange into a span trace and, after the load,
// dumps the N slowest exchanges as span trees — frontend receive, cache
// probe, each dial attempt with its protocol and race/hedge role, the
// upstream answer, and the commit, all on virtual-time offsets. Head
// sampling indexes arrivals, so a head-only -trace run forces
// -workers 1: under concurrency the ring's membership would depend on
// goroutine scheduling (the span trees stay valid; which exchanges they
// cover would not be reproducible for a seed).
//
// -tail K adds tail-based retention: every exchange is traced into a
// scratch buffer and kept only if anomalous — an error, SERVFAIL,
// stale-served answer, failover, race, or hedge, or (with -taillat) a
// virtual cost at or over the threshold — ranked in a top-K ring by
// cost and dumped after the load. Tail retention keys on per-exchange
// properties rather than arrival index, so -tail lifts the single-
// worker forcing: a concurrent drill still catches every anomalous
// exchange the ring has room for, which is the point of tail sampling.
//
// All reporting reads one obs registry snapshot (Fleet.Metrics) instead
// of per-struct counters; chaos mode diffs snapshots against a
// post-warmup baseline so every number is drill-only. The fleet also
// carries a flight recorder: chaos reports aggregate its typed event
// window (pool cooldowns, stale serves, frontend deaths) and show the
// timeline's tail, and every pool row carries its health scorecard —
// consecutive-failure streak and cooldown occupancy. Chaos mode
// additionally records one registry snapshot per epoch into an SLO burn
// engine (obs.DefaultSLO) and prints the multi-window burn-rate table
// after the drill.
//
// -load replaces the uniform worker drill with the internal/workload
// engine: -clients simulated stubs — each with its own RNG stream, stub
// cache, and protocol preference dealt from -proto — draw Zipf(-zipf)
// popular domains from the working set and resolve through the fleet on
// the virtual clock, under a closed-loop think-time or open-loop
// Poisson arrival model. -diurnal/-peak shape the rate over the day and
// -crowdmult/-crowdat/-crowddur/-crowddomain/-crowdfrac schedule a
// flash crowd (optionally pinned to one domain — the thundering-herd
// case). The run is single-goroutine and deterministic for a seed; the
// report adds the engine's own counters and per-interval qps/hit-rate
// curve on virtual time. -kill and -workers are ignored under -load.
//
// -chaos switches to the RFC 8767 resilience drill: instead of killing
// frontend addresses, the *recursors behind* the frontends flap up and
// down at random on the virtual clock. Each epoch advances virtual time,
// re-rolls every recursor's availability with probability -flap, and
// drives a slice of the query load; the report shows stale answers served
// during outages, SERVFAILs that leaked despite the stale window, the
// per-protocol exposure (stale serves and upstream failures per envelope
// — run with -proto mixed to compare), and per-recursor recovery times
// (virtual time from a recursor coming back to its first successful
// exchange). The run is deterministic for a seed:
// one driver goroutine, all flap draws from -seed, all time virtual.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dnswire"
	"repro/internal/obs"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/workload"
)

func main() {
	size := flag.Int("size", 3000, "Tranco list size of the generated world")
	seed := flag.Int64("seed", 1, "generation seed (also drives chaos flaps)")
	frontends := flag.Int("frontends", 4, "number of DoH frontends")
	protoMix := flag.String("proto", "doh", "protocol mix: doh, dot, doq, mixed, or weights like doh=60,dot=30,doq=10")
	strategyName := flag.String("strategy", "serial", "resolution strategy (serial, race, hedge)")
	stagger := flag.Duration("stagger", 0, "race head start before the cross-protocol partner launches (0: transport default)")
	hedgeQ := flag.Float64("hedgeq", 0, "hedge arming quantile in (0,1] (0: transport default)")
	balanceName := flag.String("balance", "p2", "load-balancing policy (p2, ewma, roundrobin, hash)")
	queries := flag.Int("queries", 2000, "total queries to drive")
	workers := flag.Int("workers", 8, "concurrent stub workers (chaos mode always uses 1)")
	shards := flag.Int("shards", transport.DefaultShards, "answer-cache shard count")
	shardCap := flag.Int("shardcap", transport.DefaultShardCapacity, "answer-cache entries per shard")
	hot := flag.Int("hot", 500, "working-set size (distinct names cycled through)")
	kill := flag.Int("kill", 1, "frontends to mark unreachable halfway through (ignored with -chaos)")
	post := flag.Bool("post", false, "use POST envelopes instead of GET")
	traceN := flag.Int("trace", 0, "trace every exchange and dump the N slowest span trees (forces -workers 1 unless -tail is on)")
	tailK := flag.Int("tail", 0, "tail-sample anomalous exchanges into a top-K ring and dump them after the load (0 disables)")
	tailLat := flag.Duration("taillat", 0, "with -tail: also retain exchanges at or over this virtual cost")
	staleWindow := flag.Duration("stalewindow", time.Hour, "RFC 8767 serve-stale window (0 disables)")
	refreshAhead := flag.Float64("refreshahead", 0.8, "prefetch at this fraction of TTL elapsed (0 disables)")
	cooldown := flag.Duration("cooldown", 15*time.Second, "frontend benches its recursor this long after a hard failure")
	chaos := flag.Bool("chaos", false, "flap the recursors behind the frontends instead of killing frontends")
	epochs := flag.Int("epochs", 30, "chaos epochs")
	epochLen := flag.Duration("epochlen", 90*time.Second, "virtual time advanced per chaos epoch")
	flap := flag.Float64("flap", 0.35, "per-epoch probability that a recursor is down")
	load := flag.Bool("load", false, "drive the fleet with the simulated-client workload engine instead of the uniform drill")
	clients := flag.Int("clients", 100_000, "workload: simulated stub clients")
	loadModel := flag.String("loadmodel", "closed", "workload: arrival model (closed, open)")
	openRate := flag.Float64("rate", 0.1, "workload: open-loop per-client arrival rate (queries/sec)")
	think := flag.Duration("think", 10*time.Second, "workload: closed-loop mean think time")
	zipfS := flag.Float64("zipf", 1.0, "workload: Zipf popularity exponent")
	loadDur := flag.Duration("loaddur", 10*time.Minute, "workload: simulated horizon")
	loadQueries := flag.Int("loadqueries", 0, "workload: stop after N queries (0: run the full -loaddur)")
	stubTTL := flag.Duration("stubttl", 60*time.Second, "workload: per-client stub-cache TTL")
	loadInterval := flag.Duration("loadinterval", time.Minute, "workload: telemetry sample interval (virtual time)")
	diurnal := flag.Float64("diurnal", 0, "workload: diurnal rate amplitude in [0,0.95] (0 disables)")
	peak := flag.Duration("peak", 20*time.Hour, "workload: diurnal peak time-of-day")
	crowdMult := flag.Float64("crowdmult", 0, "workload: flash-crowd rate multiplier (0: no crowd)")
	crowdAt := flag.Duration("crowdat", 2*time.Minute, "workload: flash-crowd start offset")
	crowdDur := flag.Duration("crowddur", time.Minute, "workload: flash-crowd duration")
	crowdDomain := flag.String("crowddomain", "", "workload: pin crowd draws to this domain (must be in the working set)")
	crowdFrac := flag.Float64("crowdfrac", 0.8, "workload: fraction of crowd draws pinned to -crowddomain")
	flag.Parse()

	strategy, err := transport.ParseStrategy(*strategyName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	balance, err := transport.ParseBalance(*balanceName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *hedgeQ < 0 || *hedgeQ > 1 {
		fmt.Fprintln(os.Stderr, "dohserve: -hedgeq must be in [0,1] (0 selects the transport default)")
		os.Exit(2)
	}
	if *stagger < 0 {
		fmt.Fprintln(os.Stderr, "dohserve: -stagger must be non-negative (0 selects the transport default)")
		os.Exit(2)
	}
	mix, err := transport.ParseMix(*protoMix)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *workers < 1 {
		*workers = 1
	}
	if *frontends < 1 {
		fmt.Fprintln(os.Stderr, "dohserve: -frontends must be at least 1")
		os.Exit(2)
	}
	if *chaos && (*epochs < 1 || *epochLen <= 0 || *flap < 0 || *flap > 1) {
		fmt.Fprintln(os.Stderr, "dohserve: -chaos needs -epochs ≥ 1, -epochlen > 0, and -flap in [0,1]")
		os.Exit(2)
	}

	// The campaign builds the world and the fleet with the same wiring
	// the measurement runs use; here only the fleet is driven.
	camp, err := core.NewCampaign(core.CampaignConfig{
		Size: *size, Seed: *seed,
		DoHFrontends: *frontends, DoHBalance: balance, TransportMix: mix,
		TransportStrategy: strategy, RaceStagger: *stagger, HedgeQuantile: *hedgeQ,
		DoHShards: *shards, DoHShardCap: *shardCap,
		DoHStaleWindow: *staleWindow, DoHRefreshAhead: *refreshAhead,
		DoHFailureCooldown: *cooldown,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	world, client := camp.World, camp.Fleet.Client
	client.UsePOST = *post
	if *traceN > 0 || *tailK > 0 {
		// Head sampling indexes arrivals, so a head-only dump forces one
		// worker (see the package comment); the tail ring keys on exchange
		// properties instead, so -tail runs keep their concurrency.
		if *traceN > 0 && *tailK == 0 && *workers > 1 {
			fmt.Println("tracing: forcing -workers 1 so the head-sampled ring is deterministic")
			*workers = 1
		}
		tcfg := obs.TraceConfig{SampleEvery: obs.DefaultSampleEvery}
		if *traceN > 0 {
			tcfg.SampleEvery = 1
			tcfg.Capacity = max(obs.DefaultTraceCapacity, 4**traceN)
		}
		if *tailK > 0 {
			tcfg.Tail = &obs.TailConfig{TopK: *tailK, Latency: *tailLat}
		}
		client.Tracer = obs.NewTracer(world.Clock, tcfg)
	}
	// The drill fleet carries a flight recorder. Live tooling reads the
	// raw event window — volatile kinds included — unlike campaign
	// captures, which stick to the stable multiset.
	recorder := obs.NewRecorder(world.Clock, 0)
	camp.Fleet.Recorder = recorder
	client.Recorder = recorder
	for _, fe := range camp.Fleet.Frontends {
		fe.Recorder = recorder
	}
	// Layer a deterministic 1-in-8 latency tail over the campaign's
	// synthetic per-member band: constant per-member RTTs never exceed
	// their own quantile, so without a tail the quantile-armed Hedge
	// strategy would have nothing to react to (and Race would never see
	// an upset win). Chaos mode drives queries from one goroutine, so
	// the tail sequence is reproducible for a seed.
	base := client.Latency
	var tailTick atomic.Uint64
	client.Latency = func(u *transport.Upstream) time.Duration {
		d := base(u)
		if tailTick.Add(1)%8 == 0 {
			return 4 * d
		}
		return d
	}
	day := time.Date(2023, 9, 1, 12, 0, 0, 0, time.UTC)
	world.Clock.Set(day)

	list := world.Tranco.ListFor(day)
	if *hot > 0 && *hot < len(list) {
		list = list[:*hot]
	}
	fmt.Printf("world: %d domains (working set %d); fleet: %d frontends (mix %s), strategy %s, balance %s, cache %d×%d\n",
		*size, len(list), *frontends, mix, strategy, balance, *shards, *shardCap)

	if *chaos {
		runChaos(camp, list, *queries, *epochs, *epochLen, *flap, *seed)
		dumpTraces(client, *traceN)
		dumpTail(client)
		return
	}

	if *load {
		model, err := workload.ParseModel(*loadModel)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		wcfg := workload.Config{
			Clients: *clients, Model: model, Seed: *seed,
			Domains: list, ZipfS: *zipfS,
			OpenRate: *openRate, Think: *think,
			Duration: *loadDur, MaxQueries: *loadQueries,
			StubTTL: *stubTTL, Mix: mix,
			Diurnal:  workload.Diurnal{Amplitude: *diurnal, Peak: *peak},
			Interval: *loadInterval,
		}
		if *crowdMult > 0 {
			wcfg.Crowds = []workload.FlashCrowd{{
				At: *crowdAt, Duration: *crowdDur, Multiplier: *crowdMult,
				Domain: *crowdDomain, Fraction: *crowdFrac,
			}}
		}
		runLoad(camp, wcfg)
		dumpTraces(client, *traceN)
		dumpTail(client)
		return
	}

	var ok, failed atomic.Uint64
	var killOnce sync.Once
	jobs := make(chan string)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for name := range jobs {
				if _, err := client.Query(name, dnswire.TypeHTTPS, true); err != nil {
					failed.Add(1)
				} else {
					ok.Add(1)
				}
			}
		}()
	}
	for i := 0; i < *queries; i++ {
		if i == *queries/2 && *kill > 0 {
			killOnce.Do(func() {
				stats := camp.Fleet.Pool.Stats()
				for k := 0; k < *kill && k < len(stats); k++ {
					world.Net.SetAddrDown(stats[k].Addr.Addr(), true)
					fmt.Printf("halfway: frontend %s (%v) marked unreachable\n",
						stats[k].Name, stats[k].Addr)
				}
			})
		}
		jobs <- list[i%len(list)]
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("\n%d queries in %s (%.0f q/s): %d answered, %d failed\n",
		*queries, elapsed.Round(time.Millisecond),
		float64(*queries)/elapsed.Seconds(), ok.Load(), failed.Load())
	report(camp, camp.Fleet.Metrics.Snapshot(), "totals incl. warmup")
	dumpTraces(client, *traceN)
	dumpTail(client)
}

// runLoad drives the workload engine against the campaign fleet on the
// world clock and reports the population-level view: wall-clock
// throughput (the serving-path events/sec the benchmark gates), the
// stub-cache absorption rate, and the per-interval virtual-time curve.
func runLoad(camp *core.Campaign, wcfg workload.Config) {
	eng, err := workload.New(wcfg, camp.World.Clock, camp.Fleet.Client)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("\nload: %d clients (%s loop), zipf %.2f over %d domains, stub TTL %v, horizon %v\n",
		wcfg.Clients, wcfg.Model, wcfg.ZipfS, len(wcfg.Domains), wcfg.StubTTL, wcfg.Duration)
	for _, fc := range wcfg.Crowds {
		pin := "no pinned domain"
		if fc.Domain != "" {
			pin = fmt.Sprintf("%.0f%% pinned to %s", 100*fc.Fraction, fc.Domain)
		}
		fmt.Printf("load: flash crowd ×%.1f at +%v for %v (%s)\n", fc.Multiplier, fc.At, fc.Duration, pin)
	}
	start := time.Now()
	sum := eng.Run()
	elapsed := time.Since(start)

	qps := float64(sum.Queries) / elapsed.Seconds()
	fmt.Printf("\n%d queries from %d clients in %s wall (%.0f q/s serving path): %d stub-cache hits (%.1f%%), %d fleet exchanges, %d stale, %d errors\n",
		sum.Queries, sum.Clients, elapsed.Round(time.Millisecond), qps,
		sum.StubHits, 100*float64(sum.StubHits)/float64(max(sum.Queries, 1)),
		sum.FleetExchanges, sum.StaleServed, sum.Errors)
	fmt.Printf("virtual span %v, event-stream digest %016x\n", sum.Virtual.Round(time.Second), sum.Digest)

	if points := eng.Points(); len(points) > 1 {
		fmt.Println("\nload curve (per virtual interval):")
		fmt.Println("  at            qps    stub-hit%  stale%")
		for _, p := range points {
			if p.Label != "tick" {
				continue
			}
			fmt.Printf("  %s  %8.1f  %8.1f  %6.2f\n", p.At.Format("15:04:05"),
				p.Snap.Value("workload_qps"),
				100*p.Snap.Value("workload_stub_hit_rate"),
				100*p.Snap.Value("workload_stale_rate"))
		}
	}
	report(camp, camp.Fleet.Metrics.Snapshot(), "totals incl. load")
}

// dumpTraces prints the n slowest traced exchanges as span trees.
func dumpTraces(client *transport.Client, n int) {
	if n <= 0 || client.Tracer == nil {
		return
	}
	traces := client.Tracer.Slowest(n)
	fmt.Printf("\nslowest %d of %d traced exchanges (virtual-time offsets):\n", len(traces), client.Tracer.Len())
	for _, tr := range traces {
		fmt.Print(tr.Tree())
	}
}

// dumpTail prints the tail-retained anomalous exchanges in rank order
// (highest virtual cost first), with the flags that got each kept.
func dumpTail(client *transport.Client) {
	if !client.Tracer.TailEnabled() {
		return
	}
	tail := client.Tracer.Tail()
	fmt.Printf("\ntail-sampled anomalies (%d retained, cost-ranked):\n", len(tail))
	for _, tr := range tail {
		fmt.Printf("  %-32s %10v  [%s]\n", tr.Name, tr.Duration.Round(time.Microsecond), tr.Flags)
	}
}

// burnTable renders the drill's multi-window SLO burn rates.
func burnTable(burn *obs.BurnEngine) {
	burns := burn.Burn()
	if len(burns) == 0 {
		return
	}
	slo := burn.SLO()
	fmt.Printf("\nSLO burn rates (avail ≥ %.3f, p99 ≤ %v, stale ≤ %.0f%%; trailing windows):\n",
		slo.Availability, slo.LatencyP99, 100*slo.StaleRatio)
	fmt.Println("  window    avail     burn    p99          stale%    burn  viol")
	for _, wb := range burns {
		r := wb.Report
		fmt.Printf("  %-8s %.4f  %6.2f   %-10v  %6.2f  %6.2f  %4d\n",
			wb.Window, r.Availability, r.AvailabilityBurn,
			r.P99.Round(time.Microsecond), 100*r.StaleRatio, r.StaleBurn, r.Violations)
	}
}

// recorderSummary aggregates the drill window's flight-recorder events
// and shows the tail of the raw timeline.
func recorderSummary(rec *obs.Recorder, from, to time.Time) {
	events := rec.Window(from, to)
	if len(events) == 0 {
		return
	}
	fmt.Printf("\nflight recorder: %d events in the drill window (%d evicted from the ring):\n",
		len(events), rec.Dropped())
	for _, ec := range obs.CountEvents(events) {
		fmt.Printf("  %-44s ×%d\n", ec.Key(), ec.Count)
	}
	last := events
	if len(last) > 8 {
		last = last[len(last)-8:]
	}
	fmt.Println("last events:")
	for _, e := range last {
		fmt.Printf("  %s  %s\n", e.At.Format("15:04:05"), e.Key())
	}
}

// flakyUpstream wraps a recursor so chaos mode can take it down: while
// down, HandleDNS returns nil — the same hard failure a frontend sees
// from a dead recursive fleet. It also measures recovery: the virtual
// time from an up-transition to the first exchange that actually reaches
// the recursor again (cache freshness and frontend cooldowns both delay
// that moment — exactly the staleness window §4.4.2 measures).
//
// Chaos mode drives queries from a single goroutine, so the fields are
// deliberately unsynchronised.
type flakyUpstream struct {
	name  string
	inner simnet.DNSHandler
	clock *simnet.Clock

	down       bool
	flaps      int
	upAt       time.Time
	waiting    bool
	recoveries []time.Duration
}

func (f *flakyUpstream) HandleDNS(q *dnswire.Message) *dnswire.Message {
	if f.down {
		return nil
	}
	resp := f.inner.HandleDNS(q)
	if resp != nil && f.waiting {
		f.waiting = false
		f.recoveries = append(f.recoveries, f.clock.Now().Sub(f.upAt))
	}
	return resp
}

// setDown flips availability, recording flap and recovery bookkeeping.
func (f *flakyUpstream) setDown(down bool) {
	if down == f.down {
		return
	}
	f.down = down
	if down {
		f.flaps++
		f.waiting = false
	} else {
		f.upAt = f.clock.Now()
		f.waiting = true
	}
}

// runChaos executes the flapping drill: warm the cache with every
// recursor up, then per epoch advance the virtual clock, re-roll each
// recursor's availability, and drive a slice of the load.
func runChaos(camp *core.Campaign, list []string, queries, epochs int, epochLen time.Duration, flapP float64, seed int64) {
	world, client := camp.World, camp.Fleet.Client
	// One flaky wrapper per recursor org, shared by the frontends that
	// org backs (buildFleet alternates google/cloudflare by index).
	ups := []*flakyUpstream{
		{name: "google-recursor", inner: world.GoogleResolver, clock: world.Clock},
		{name: "cloudflare-recursor", inner: world.CFResolver, clock: world.Clock},
	}
	for i, fe := range camp.Fleet.Frontends {
		fe.Handler = ups[i%2]
	}

	fmt.Printf("chaos: %d epochs × %v, flap p=%.2f, stale window %v, cooldown %v\n",
		epochs, epochLen, flapP, camp.Fleet.Cache.Config().StaleWindow,
		camp.Fleet.Frontends[0].FailureCooldown)

	// Warmup: populate the shared cache while everything is healthy.
	for _, name := range list {
		if _, err := client.Query(name, dnswire.TypeHTTPS, true); err != nil {
			fmt.Fprintf(os.Stderr, "warmup query %s failed: %v\n", name, err)
			os.Exit(1)
		}
	}
	// Baseline snapshot taken after warmup so every reported delta is
	// drill-only; the sampler records one full snapshot per epoch for the
	// resilience curve.
	base := camp.Fleet.Metrics.Snapshot()
	sampler := obs.NewSampler(camp.Fleet.Metrics, world.Clock, epochLen, false)
	// One full snapshot per epoch feeds the multi-window burn engine —
	// full, not stable: a live drill wants the latency histogram so the
	// p99 objective is evaluated.
	burn := obs.NewBurnEngine(world.Clock, obs.DefaultSLO())
	burn.Record(base)

	rng := rand.New(rand.NewSource(seed))
	perEpoch := queries / epochs
	if perEpoch < 1 {
		perEpoch = 1
	}
	var answered, errored, servfails int
	next := 0
	chaosStart := world.Clock.Now()
	for e := 0; e < epochs; e++ {
		world.Clock.Advance(epochLen)
		downs := 0
		for _, u := range ups {
			u.setDown(rng.Float64() < flapP)
			if u.down {
				downs++
			}
		}
		staleBefore := client.StaleAnswers()
		for i := 0; i < perEpoch; i++ {
			m, err := client.Query(list[next%len(list)], dnswire.TypeHTTPS, true)
			next++
			switch {
			case err != nil:
				errored++
			case m.RCode == dnswire.RCodeServFail:
				servfails++
			default:
				answered++
			}
		}
		fmt.Printf("  epoch %2d: %d/%d recursors down, %3d queries, %3d stale-served\n",
			e, downs, len(ups), perEpoch, client.StaleAnswers()-staleBefore)
		sampler.Force(fmt.Sprintf("epoch%02d", e))
		burn.Record(camp.Fleet.Metrics.Snapshot())
	}
	for _, u := range ups {
		u.setDown(false)
	}
	virtual := world.Clock.Now().Sub(chaosStart)

	fmt.Printf("\nchaos drill: %d queries over %v virtual time: %d answered, %d SERVFAIL, %d hard failures\n",
		perEpoch*epochs, virtual.Round(time.Second), answered, servfails, errored)
	diff := camp.Fleet.Metrics.Snapshot().Sub(base)
	fmt.Printf("stale answers served: %.0f (must be > 0: outages rode the stale window)\n",
		diff.Value("client_stale_answers_total"))
	if servfails == 0 && errored == 0 {
		fmt.Println("zero SERVFAILs / hard failures: every outage was covered by serve-stale")
	}
	chaosCurve(camp, base, sampler.Points())
	burnTable(burn)
	recorderSummary(camp.Fleet.Recorder, chaosStart, world.Clock.Now())
	report(camp, diff, "drill deltas")

	fmt.Println("\nrecovery times (virtual time from recursor up-flap to first successful exchange):")
	for _, u := range ups {
		if len(u.recoveries) == 0 {
			fmt.Printf("  %-20s %d flaps, no completed recoveries observed\n", u.name, u.flaps)
			continue
		}
		var sum, max time.Duration
		for _, r := range u.recoveries {
			sum += r
			if r > max {
				max = r
			}
		}
		mean := sum / time.Duration(len(u.recoveries))
		fmt.Printf("  %-20s %d flaps, %d recoveries: mean %v, max %v\n",
			u.name, u.flaps, len(u.recoveries), mean.Round(time.Millisecond), max.Round(time.Millisecond))
	}
}

// fleetProtocols lists the fleet's distinct protocols in doh/dot/doq
// order.
func fleetProtocols(camp *core.Campaign) []transport.Protocol {
	present := map[transport.Protocol]bool{}
	for _, fe := range camp.Fleet.Frontends {
		present[fe.Proto] = true
	}
	var out []transport.Protocol
	for _, p := range []transport.Protocol{transport.ProtoDoH, transport.ProtoDoT, transport.ProtoDoQ} {
		if present[p] {
			out = append(out, p)
		}
	}
	return out
}

// chaosCurve prints the per-epoch resilience curve from the sampler's
// full snapshots: stale serves and hedges as per-epoch deltas against the
// previous sample, pool health and cache hit rate as levels.
func chaosCurve(camp *core.Campaign, base *obs.Snapshot, points []obs.Point) {
	if len(points) == 0 {
		return
	}
	fmt.Println("\nresilience curve (per-epoch snapshot deltas):")
	fmt.Println("  epoch    stale  hedges  pool-healthy  cache-hit%")
	prev := base
	for _, p := range points {
		d := p.Snap.Sub(prev)
		hitRate := 100 * obs.Ratio(uint64(p.Snap.Value("cache_hits_total")),
			uint64(p.Snap.Value("cache_hits_total")+p.Snap.Value("cache_misses_total")))
		fmt.Printf("  %-7s %6.0f  %6.0f  %7.0f/%-4.0f  %9.1f\n",
			p.Label, d.Value("client_stale_answers_total"), d.Value("strategy_hedges_total"),
			p.Snap.Value("pool_healthy"), p.Snap.Value("pool_members"), hitRate)
		prev = p.Snap
	}
}

// report renders the fleet's state from one registry snapshot — the
// per-frontend and per-protocol lifecycle counters, strategy telemetry,
// exchange-latency histogram, pool health, and shared-cache statistics.
// Chaos mode passes a Sub-diffed snapshot so counters read as drill
// deltas while gauges keep their current levels.
func report(camp *core.Campaign, snap *obs.Snapshot, label string) {
	type lifecycleRow struct {
		name   string
		labels []obs.Label
	}
	lifecycle := func(rows []lifecycleRow) {
		for _, row := range rows {
			fmt.Printf("  %-22s served %6.0f  hits %6.0f  stale %5.0f  neg %4.0f  prefetch %4.0f  upstream-fail %4.0f\n",
				row.name,
				snap.Value("frontend_served_total", row.labels...),
				snap.Value("frontend_cache_hits_total", row.labels...),
				snap.Value("frontend_stale_served_total", row.labels...),
				snap.Value("frontend_negative_hits_total", row.labels...),
				snap.Value("frontend_prefetches_total", row.labels...),
				snap.Value("frontend_upstream_failures_total", row.labels...))
		}
	}
	fmt.Printf("\nfrontends (cache lifecycle, %s):\n", label)
	var rows []lifecycleRow
	for _, fe := range camp.Fleet.Frontends {
		rows = append(rows, lifecycleRow{name: fe.Name,
			labels: []obs.Label{obs.L("frontend", fe.Name), obs.L("proto", fe.Proto.String())}})
	}
	lifecycle(rows)
	if protos := fleetProtocols(camp); len(protos) > 1 {
		// Per-protocol totals aggregate the labeled frontend families by
		// their proto label.
		totals := map[transport.Protocol]map[string]float64{}
		for _, fe := range camp.Fleet.Frontends {
			if totals[fe.Proto] == nil {
				totals[fe.Proto] = map[string]float64{}
			}
			labels := []obs.Label{obs.L("frontend", fe.Name), obs.L("proto", fe.Proto.String())}
			for _, name := range []string{
				"frontend_served_total", "frontend_cache_hits_total",
				"frontend_stale_served_total", "frontend_negative_hits_total",
				"frontend_prefetches_total", "frontend_upstream_failures_total",
			} {
				totals[fe.Proto][name] += snap.Value(name, labels...)
			}
		}
		fmt.Println("\nper-protocol totals:")
		for _, p := range protos {
			t := totals[p]
			fmt.Printf("  %-5s served %6.0f  hits %6.0f  stale %5.0f  neg %4.0f  prefetch %4.0f  upstream-fail %4.0f\n",
				p, t["frontend_served_total"], t["frontend_cache_hits_total"],
				t["frontend_stale_served_total"], t["frontend_negative_hits_total"],
				t["frontend_prefetches_total"], t["frontend_upstream_failures_total"])
		}
	}

	fmt.Printf("\nresolution strategy %s (%s):\n", camp.Fleet.StrategyStats().Strategy, label)
	exchanges := snap.Value("client_exchanges_total")
	wasted := snap.Value("strategy_wasted_total")
	fmt.Printf("  %.0f exchanges, %.0f attempts: %.0f races started, %.0f hedges fired, %.0f losers cancelled\n",
		exchanges, snap.Value("strategy_attempts_total"), snap.Value("strategy_races_total"),
		snap.Value("strategy_hedges_total"), snap.Value("strategy_losers_cancelled_total"))
	overhead := 0.0
	if exchanges > 0 {
		overhead = 100 * wasted / exchanges
	}
	fmt.Printf("  wasted upstream queries: %.0f (%.1f%% duplicate-load overhead)\n", wasted, overhead)
	var wins float64
	for _, p := range []transport.Protocol{transport.ProtoDoH, transport.ProtoDoT, transport.ProtoDoQ} {
		wins += snap.Value("strategy_wins_total", obs.L("proto", p.String()))
	}
	if wins > 0 {
		fmt.Print("  winner protocols:")
		for _, p := range []transport.Protocol{transport.ProtoDoH, transport.ProtoDoT, transport.ProtoDoQ} {
			if n := snap.Value("strategy_wins_total", obs.L("proto", p.String())); n > 0 {
				fmt.Printf("  %s %.0f (%.1f%%)", p, n, 100*n/wins)
			}
		}
		fmt.Println()
	}
	if lat, ok := snap.Get("exchange_latency_seconds"); ok && lat.Count > 0 {
		fmt.Printf("  exchange latency: %d observed, mean %s\n",
			lat.Count, (time.Duration(lat.Sum / float64(lat.Count) * float64(time.Second))).Round(time.Microsecond))
	}

	fmt.Printf("\npool (%.0f/%.0f members healthy; scorecard: failure streak and cooldown occupancy):\n",
		snap.Value("pool_healthy"), snap.Value("pool_members"))
	for _, st := range camp.Fleet.Pool.Stats() {
		labels := []obs.Label{obs.L("member", st.Name), obs.L("proto", st.Proto.String())}
		fmt.Printf("  %-22s queries %6.0f  failures %3.0f  streak %2d  benched %-8v down=%-5v rtt=%s\n",
			st.Name, snap.Value("pool_member_queries_total", labels...),
			snap.Value("pool_member_failures_total", labels...),
			st.ConsecFails, st.CooldownTotal.Round(time.Second), st.Down,
			(time.Duration(snap.Value("pool_member_rtt_seconds", labels...) * float64(time.Second))).Round(time.Microsecond))
	}

	hits, misses := snap.Value("cache_hits_total"), snap.Value("cache_misses_total")
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = 100 * hits / (hits + misses)
	}
	fmt.Printf("\nshared cache: %.0f entries (%.0f negative), %.0f hits / %.0f misses (%.1f%% hit rate), %.0f evictions\n",
		snap.Value("cache_entries"), snap.Value("cache_negative_entries"),
		hits, misses, hitRate, snap.Value("cache_evictions_total"))
	fmt.Printf("lifecycle: %.0f stale serves, %.0f negative hits, %.0f prefetches armed\n",
		snap.Value("cache_stale_serves_total"), snap.Value("cache_negative_hits_total"),
		snap.Value("cache_refreshes_total"))
	fmt.Printf("recursor-side queries (incl. iterative lookups): %d\n", camp.World.Net.QueryCount())
}

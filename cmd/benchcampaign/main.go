// Command benchcampaign measures the campaign pipelining speedup: it runs
// the same multi-week daily campaign twice — serially (DayWorkers: 1) and
// pipelined (DayWorkers: N) — verifies the two runs collected identical
// datasets, and writes the timings to a JSON report (BENCH_campaign.json by
// default) so the perf trajectory is tracked commit over commit.
//
// Usage:
//
//	benchcampaign [-size N] [-days D] [-dayworkers W] [-seed S]
//	              [-frontends N] [-mix doh|dot|doq|mixed|doh=..,dot=..]
//	              [-strategy serial|race|hedge]
//	              [-hourly] [-hourworkers W] [-hourlydays D]
//	              [-loadbench] [-loadclients N] [-loadevents N]
//	              [-allocbench] [-cpuprofile FILE] [-memprofile FILE]
//	              [-out FILE] [-smoke] [-baseline FILE] [-maxregress PCT]
//
// -loadbench appends a serving-path queries/sec section: the
// internal/workload engine drives -loadclients simulated stubs (a
// million by default, -smoke included — the population size is the
// point) through a fleet until the -loadevents query budget is spent,
// and records the wall-clock workload_qps. Unlike the speedup gates,
// workload_qps is gated warn-only: absolute throughput is host-bound,
// so a slower machine must not fail CI — the number is tracked, not
// enforced.
//
// -hourly appends a second section timing the hourly ECH campaign — the
// same days of hourly scans run with HourWorkers 1 and HourWorkers N —
// and records hourly_serial_ms / hourly_pipelined_ms / hourly_speedup
// alongside a serial-vs-pipelined hourly store comparison.
//
// -frontends runs the campaign through an encrypted-DNS serving fleet of
// that many frontends, with -mix selecting the protocol split and
// -strategy the client's resolution strategy (serial failover,
// happy-eyeballs racing, or hedged queries) — the per-protocol and
// per-strategy dimensions of the campaign benchmark. Reports are tagged
// with the frontend count, mix, and strategy, and the -baseline gate
// only compares runs with identical tags, so an all-DoH serial baseline
// is never held to a mixed-fleet racing number (or vice versa).
//
// Fleet campaigns time two further pipelined dimensions: a run with
// telemetry series enabled (instrumented_ms / obs_overhead_pct) and a
// run with the anomaly tier on — flight recorder, tail-sampled traces,
// and per-day SLO captures (recorder_ms / recorder_overhead_pct /
// slo_violations). Both overheads are designed to stay under a few
// percent of the uninstrumented pipelined run; the bench warns past 5%.
//
// -allocbench (on by default) appends the serving path's allocation
// budget: a single goroutine drives warmed cached and uncached exchange
// loops under the reuse APIs and reads the runtime.MemStats deltas,
// recording allocs_per_query_cached / allocs_per_query_uncached /
// bytes_per_query. The numbers mirror BenchmarkExchangeAllocs and are
// gated warn-only against both the committed per-query budgets and the
// -baseline report — allocation counts are deterministic, but a budget
// miss should show up loudly in CI logs, not block an unrelated change.
//
// -cpuprofile / -memprofile write pprof profiles covering the measured
// runs (the heap profile is taken after a final GC), for feeding
// `go tool pprof` — `make profile` wraps the common invocation.
//
// -smoke shrinks the campaign to a CI-friendly single-iteration size.
//
// -baseline points at a committed BENCH_campaign.json; the run's speedup
// is compared against it and the command fails when it regressed by more
// than -maxregress percent. Speedups are only comparable between hosts
// with the same GOMAXPROCS (the workload is CPU-bound simulation), so a
// core-count mismatch downgrades the gate to a warning.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/netip"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/core"
	"repro/internal/dnswire"
	"repro/internal/providers"
	"repro/internal/transport"
	"repro/internal/workload"
)

// report is the BENCH_campaign.json layout.
type report struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	NumCPU      int    `json:"num_cpu"`
	GoMaxProcs  int    `json:"go_max_procs"`
	Size        int    `json:"size"`
	Seed        int64  `json:"seed"`
	Days        int    `json:"days"`
	DayWorkers  int    `json:"day_workers"`
	// Frontends, TransportMix, and Strategy tag the serving-layer shape
	// of the run (0 / "" when the campaign queried the recursors
	// directly).
	Frontends    int     `json:"frontends,omitempty"`
	TransportMix string  `json:"transport_mix,omitempty"`
	Strategy     string  `json:"strategy,omitempty"`
	SerialMS     float64 `json:"serial_ms"`
	PipelinedMS  float64 `json:"pipelined_ms"`
	Speedup      float64 `json:"speedup"`
	// InstrumentedMS times a third pipelined run with telemetry series
	// enabled (fleet campaigns only); ObsOverheadPct is its cost relative
	// to the uninstrumented pipelined run. The observability layer is
	// designed to stay under a few percent — the bench warns past 5%.
	InstrumentedMS float64 `json:"instrumented_ms,omitempty"`
	ObsOverheadPct float64 `json:"obs_overhead_pct,omitempty"`
	// RecorderMS times a fourth pipelined run with the anomaly tier on —
	// flight recorder, tail-sampled traces, and per-day SLO captures
	// (fleet campaigns only); RecorderOverheadPct is its cost relative
	// to the uninstrumented pipelined run, held to the same 5% warn
	// budget. SLOViolations sums that run's per-day capture verdicts;
	// it is a pointer so a healthy campaign records an explicit zero
	// while recorder-less runs omit the field entirely.
	RecorderMS          float64 `json:"recorder_ms,omitempty"`
	RecorderOverheadPct float64 `json:"recorder_overhead_pct,omitempty"`
	SLOViolations       *int    `json:"slo_violations,omitempty"`
	Queries             uint64  `json:"dns_queries_per_run"`
	StoresEqual         bool    `json:"stores_equal"`
	// Hourly* report the -hourly section: the same hourly ECH campaign
	// run with HourWorkers 1 vs HourWorkers N, plus the serial/pipelined
	// store comparison. Zero-valued when -hourly was not requested.
	HourWorkers       int     `json:"hour_workers,omitempty"`
	HourlyDays        int     `json:"hourly_days,omitempty"`
	HourlySerialMS    float64 `json:"hourly_serial_ms,omitempty"`
	HourlyPipelinedMS float64 `json:"hourly_pipelined_ms,omitempty"`
	HourlySpeedup     float64 `json:"hourly_speedup,omitempty"`
	HourlyStoresEqual bool    `json:"hourly_stores_equal,omitempty"`
	// Workload* report the -loadbench section: the workload engine's
	// serving-path throughput. WorkloadQPS is wall-clock queries/sec —
	// host-bound, so its regression gate is warn-only.
	WorkloadClients  int     `json:"workload_clients,omitempty"`
	WorkloadQueries  uint64  `json:"workload_queries,omitempty"`
	WorkloadStubHits uint64  `json:"workload_stub_hits,omitempty"`
	WorkloadMS       float64 `json:"workload_ms,omitempty"`
	WorkloadQPS      float64 `json:"workload_qps,omitempty"`
	// AllocsPerQuery* report the -allocbench section: MemStats-delta
	// allocation counts per exchange on the warmed cached and uncached
	// serving paths, with BytesPerQuery the cached path's per-query heap
	// bytes. Deterministic (single goroutine, fixed world), so drift
	// against the committed budget or the baseline means a code change
	// put allocations back on the hot path — warned, never failed.
	AllocsPerQueryCached   float64 `json:"allocs_per_query_cached,omitempty"`
	AllocsPerQueryUncached float64 `json:"allocs_per_query_uncached,omitempty"`
	BytesPerQuery          float64 `json:"bytes_per_query,omitempty"`
	// Note flags reports whose speedup is not meaningful (single-core
	// hosts: the workload is CPU-bound simulation, so pipelining cannot
	// beat serial there).
	Note string `json:"note,omitempty"`
}

func main() {
	size := flag.Int("size", 400, "Tranco list size of the generated world")
	days := flag.Int("days", 21, "campaign length in days (daily step)")
	workers := flag.Int("dayworkers", 8, "day workers for the pipelined run")
	seed := flag.Int64("seed", 7, "generation seed")
	frontends := flag.Int("frontends", 0, "encrypted-DNS frontends to route the campaign through (0: direct stub queries)")
	mixFlag := flag.String("mix", "doh", "frontend protocol mix (with -frontends): doh, dot, doq, mixed, or weights")
	strategyFlag := flag.String("strategy", "serial", "resolution strategy (with -frontends): serial, race, or hedge")
	hourly := flag.Bool("hourly", false, "also benchmark the hourly ECH pipeline (HourWorkers 1 vs -hourworkers)")
	hourWorkers := flag.Int("hourworkers", 8, "hour workers for the pipelined hourly run (with -hourly)")
	hourlyDays := flag.Int("hourlydays", 3, "hourly ECH campaign length in days (with -hourly)")
	loadBench := flag.Bool("loadbench", false, "also benchmark the workload engine's serving-path queries/sec")
	loadClients := flag.Int("loadclients", 1_000_000, "workload bench: simulated clients (with -loadbench)")
	loadEvents := flag.Int("loadevents", 2_000_000, "workload bench: query budget (with -loadbench)")
	allocBench := flag.Bool("allocbench", true, "measure the serving path's per-query allocation budget")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile covering the measured runs to this file")
	memProfile := flag.String("memprofile", "", "write a post-GC heap profile to this file")
	out := flag.String("out", "BENCH_campaign.json", "report path ('-' for stdout)")
	smoke := flag.Bool("smoke", false, "CI smoke mode: tiny campaign, no timing claims")
	baseline := flag.String("baseline", "", "committed report to gate the speedup against (empty disables)")
	maxRegress := flag.Float64("maxregress", 20, "fail when speedup regressed more than this percent vs -baseline")
	flag.Parse()

	mix, err := transport.ParseMix(*mixFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	strategy, err := transport.ParseStrategy(*strategyFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *smoke {
		*size, *days, *hourlyDays = 150, 5, 1
		// The smoke budget shrinks the query budget, never the population:
		// standing up 10^6 clients (RNG streams, stub caches, the initial
		// arrival heap) is itself the scalability claim under test.
		*loadEvents = 500_000
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	}
	// The window deliberately covers the NS-scan and connectivity-probe
	// phases so every per-day stage is exercised.
	start := time.Date(2024, 1, 25, 0, 0, 0, 0, time.UTC)
	end := start.AddDate(0, 0, *days-1)

	run := func(dayWorkers int, telemetry time.Duration, anomaly bool) (time.Duration, uint64, []byte, int) {
		c, err := core.NewCampaign(core.CampaignConfig{
			Size: *size, Seed: *seed, Start: start, End: end, StepDays: 1,
			DayWorkers:   dayWorkers,
			DoHFrontends: *frontends, TransportMix: mix,
			TransportStrategy: strategy,
			TelemetryInterval: telemetry,
			AnomalyCapture:    anomaly,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		t0 := time.Now()
		if err := c.RunDaily(); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		elapsed := time.Since(t0)
		var buf bytes.Buffer
		if err := c.Store.WriteJSON(&buf); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		viol := 0
		if anomaly {
			for _, day := range c.Store.AnomalyDays() {
				if capt, ok := c.Store.AnomalyFor(day); ok {
					viol += capt.Violations
				}
			}
		}
		return elapsed, c.World.Net.QueryCount(), buf.Bytes(), viol
	}

	fleetTag := ""
	if *frontends > 0 {
		fleetTag = fmt.Sprintf(", %d frontends mix=%s strategy=%s", *frontends, mix, strategy)
	}
	fmt.Fprintf(os.Stderr, "benchcampaign: size=%d days=%d (serial vs %d day workers)%s\n",
		*size, *days, *workers, fleetTag)
	serialDur, serialQ, serialStore, _ := run(1, 0, false)
	fmt.Fprintf(os.Stderr, "  serial:    %v (%d DNS queries)\n", serialDur.Round(time.Millisecond), serialQ)
	pipeDur, _, pipeStore, _ := run(*workers, 0, false)
	fmt.Fprintf(os.Stderr, "  pipelined: %v\n", pipeDur.Round(time.Millisecond))
	// Third dimension, fleet campaigns only: the same pipelined run with
	// telemetry series enabled, timing what the observability layer costs.
	var instrDur time.Duration
	if *frontends > 0 {
		instrDur, _, _, _ = run(*workers, time.Hour, false)
		fmt.Fprintf(os.Stderr, "  instrumented: %v (telemetry series on)\n", instrDur.Round(time.Millisecond))
	}
	// Fourth dimension, fleet campaigns only: the anomaly tier — flight
	// recorder, tail-sampled traces, and per-day SLO captures on every
	// day replica — timing what anomaly detection costs end to end.
	var recDur time.Duration
	var sloViol int
	if *frontends > 0 {
		recDur, _, _, sloViol = run(*workers, 0, true)
		fmt.Fprintf(os.Stderr, "  anomaly-tier: %v (recorder + tail sampling on, %d SLO violations)\n",
			recDur.Round(time.Millisecond), sloViol)
	}

	// -hourly section: the hourly ECH campaign with HourWorkers 1 vs N.
	// The window sits inside the ECH deployment era (key rotation is what
	// the hourly scans measure), mirroring the fig4 reproduction.
	var hourlySerial, hourlyPipe time.Duration
	var hourlyEqual bool
	if *hourly {
		runHourly := func(hw int) (time.Duration, []byte) {
			c, err := core.NewCampaign(core.CampaignConfig{
				Size: *size, Seed: *seed,
				HourWorkers:  hw,
				DoHFrontends: *frontends, TransportMix: mix,
				TransportStrategy: strategy,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			t0 := time.Now()
			c.RunHourlyECH(time.Date(2023, 7, 21, 0, 0, 0, 0, time.UTC), *hourlyDays)
			elapsed := time.Since(t0)
			var buf bytes.Buffer
			if err := c.Store.WriteJSON(&buf); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			return elapsed, buf.Bytes()
		}
		fmt.Fprintf(os.Stderr, "benchcampaign -hourly: %d days of hourly ECH (serial vs %d hour workers)\n",
			*hourlyDays, *hourWorkers)
		var sStore, pStore []byte
		hourlySerial, sStore = runHourly(1)
		fmt.Fprintf(os.Stderr, "  serial:    %v\n", hourlySerial.Round(time.Millisecond))
		hourlyPipe, pStore = runHourly(*hourWorkers)
		fmt.Fprintf(os.Stderr, "  pipelined: %v\n", hourlyPipe.Round(time.Millisecond))
		hourlyEqual = bytes.Equal(sStore, pStore)
	}

	// -loadbench section: the workload engine's serving-path throughput.
	// One run (no serial/pipelined pair — the engine is single-goroutine
	// by design), through a fleet of the benchmark's shape.
	var loadDur time.Duration
	var loadSum workload.Summary
	if *loadBench {
		fe := *frontends
		if fe == 0 {
			fe = 4
		}
		c, err := core.NewCampaign(core.CampaignConfig{
			Size: *size, Seed: *seed,
			DoHFrontends: fe, TransportMix: mix, TransportStrategy: strategy,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		day := start.Add(12 * time.Hour)
		c.World.Clock.Set(day)
		eng, err := workload.New(workload.Config{
			Clients: *loadClients, Seed: *seed,
			Domains:  c.World.Tranco.ListFor(start),
			Duration: 24 * time.Hour, MaxQueries: *loadEvents,
			Mix: mix,
		}, c.World.Clock, c.Fleet.Client)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchcampaign -loadbench: %d clients, %d-query budget, %d frontends\n",
			*loadClients, *loadEvents, fe)
		t0 := time.Now()
		loadSum = eng.Run()
		loadDur = time.Since(t0)
		fmt.Fprintf(os.Stderr, "  workload:  %v for %d queries (%.0f q/s, %.1f%% stub-cache hits)\n",
			loadDur.Round(time.Millisecond), loadSum.Queries,
			float64(loadSum.Queries)/loadDur.Seconds(),
			100*float64(loadSum.StubHits)/float64(max(loadSum.Queries, 1)))
	}

	// -allocbench section: per-query allocation counts on the warmed
	// cached and uncached serving paths, mirroring BenchmarkExchangeAllocs.
	var allocCached, allocUncached, bytesCached float64
	if *allocBench {
		allocCached, bytesCached = measureExchangeAllocs(true)
		allocUncached, _ = measureExchangeAllocs(false)
		fmt.Fprintf(os.Stderr,
			"benchcampaign -allocbench: cached %.1f allocs/query (%.0f B), uncached %.1f allocs/query\n",
			allocCached, bytesCached, allocUncached)
		// The same half-alloc slack the baseline gate applies: the budget
		// counts whole allocations per query; amortised bookkeeping (map
		// growth, pool refills) shows up as a fraction.
		if allocCached > allocBudgetCached+0.5 {
			fmt.Fprintf(os.Stderr,
				"  warning: cached-path allocs/query %.1f exceeds the committed budget of %d\n",
				allocCached, allocBudgetCached)
		}
		if allocUncached > allocBudgetUncached+0.5 {
			fmt.Fprintf(os.Stderr,
				"  warning: uncached-path allocs/query %.1f exceeds the committed budget of %d\n",
				allocUncached, allocBudgetUncached)
		}
	}

	// Profiles cover everything measured above; finalise them before the
	// gates run so a failing gate's deferred exit cannot drop them.
	if *cpuProfile != "" {
		pprof.StopCPUProfile()
		fmt.Fprintf(os.Stderr, "wrote %s\n", *cpuProfile)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "wrote %s\n", *memProfile)
	}

	r := report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Size:        *size,
		Seed:        *seed,
		Days:        *days,
		DayWorkers:  *workers,
		Frontends:   *frontends,
		SerialMS:    float64(serialDur.Microseconds()) / 1000,
		PipelinedMS: float64(pipeDur.Microseconds()) / 1000,
		Speedup:     float64(serialDur) / float64(pipeDur),
		Queries:     serialQ,
		StoresEqual: bytes.Equal(serialStore, pipeStore),
	}
	if *frontends > 0 {
		// The mix and strategy only shape the run when a fleet is in the
		// loop; tag direct-query runs with the empty string so their
		// baselines stay comparable regardless of the flag defaults.
		r.TransportMix = mix.String()
		r.Strategy = strategy.String()
	}
	if instrDur > 0 {
		r.InstrumentedMS = float64(instrDur.Microseconds()) / 1000
		r.ObsOverheadPct = (float64(instrDur) - float64(pipeDur)) / float64(pipeDur) * 100
		if r.ObsOverheadPct > 5 {
			fmt.Fprintf(os.Stderr,
				"  warning: telemetry instrumentation overhead %.1f%% exceeds the 5%% budget\n",
				r.ObsOverheadPct)
		} else {
			fmt.Fprintf(os.Stderr, "  instrumentation overhead: %.1f%% (budget 5%%)\n", r.ObsOverheadPct)
		}
	}
	if recDur > 0 {
		r.RecorderMS = float64(recDur.Microseconds()) / 1000
		r.RecorderOverheadPct = (float64(recDur) - float64(pipeDur)) / float64(pipeDur) * 100
		r.SLOViolations = &sloViol
		if r.RecorderOverheadPct > 5 {
			fmt.Fprintf(os.Stderr,
				"  warning: anomaly-tier overhead %.1f%% exceeds the 5%% budget\n",
				r.RecorderOverheadPct)
		} else {
			fmt.Fprintf(os.Stderr, "  anomaly-tier overhead: %.1f%% (budget 5%%)\n", r.RecorderOverheadPct)
		}
	}
	if *hourly {
		r.HourWorkers = *hourWorkers
		r.HourlyDays = *hourlyDays
		r.HourlySerialMS = float64(hourlySerial.Microseconds()) / 1000
		r.HourlyPipelinedMS = float64(hourlyPipe.Microseconds()) / 1000
		r.HourlySpeedup = float64(hourlySerial) / float64(hourlyPipe)
		r.HourlyStoresEqual = hourlyEqual
	}
	if *loadBench {
		r.WorkloadClients = *loadClients
		r.WorkloadQueries = loadSum.Queries
		r.WorkloadStubHits = loadSum.StubHits
		r.WorkloadMS = float64(loadDur.Microseconds()) / 1000
		r.WorkloadQPS = float64(loadSum.Queries) / loadDur.Seconds()
	}
	if *allocBench {
		r.AllocsPerQueryCached = allocCached
		r.AllocsPerQueryUncached = allocUncached
		r.BytesPerQuery = bytesCached
	}
	if r.GoMaxProcs <= 1 {
		r.Note = "single-core host: speedup is meaningful only with go_max_procs > 1; stores_equal is the signal here"
	}
	if !r.StoresEqual {
		fmt.Fprintln(os.Stderr, "error: pipelined store diverged from serial store")
		defer os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "  speedup:   %.2fx on %d CPUs (stores equal: %v)\n",
		r.Speedup, r.NumCPU, r.StoresEqual)
	if *hourly {
		if !hourlyEqual {
			fmt.Fprintln(os.Stderr, "error: pipelined hourly store diverged from serial hourly store")
			defer os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "  hourly speedup: %.2fx (stores equal: %v)\n",
			r.HourlySpeedup, r.HourlyStoresEqual)
	}

	// Regression gate: the baseline must be read before -out overwrites
	// it — and on failure it must NOT be overwritten, or rerunning the
	// bench would launder the regression into the new baseline.
	if *baseline != "" && !gateSpeedup(*baseline, &r, *maxRegress) {
		defer os.Exit(1)
		if *out == *baseline {
			fmt.Fprintf(os.Stderr, "  gate: keeping baseline %s (regressed report not written)\n", *out)
			return
		}
	}

	writeReport(&r, *out)
}

// gateSpeedup compares the run against a committed baseline report and
// reports whether the gate passed. A missing/unreadable baseline only
// warns, as does any configuration mismatch — a different GOMAXPROCS
// (speedups are host-shape-bound) or a different campaign shape
// (size/days/workers/seed, and the serving-layer shape: frontend count,
// protocol mix, and resolution strategy — a 5-day smoke pipeline is
// structurally slower than the 21-day baseline, a DoT-heavy fleet pays
// different envelope costs than an all-DoH one, and a racing client
// fires duplicate attempts a serial one never pays for, so none is held
// to another's number).
func gateSpeedup(path string, r *report, maxRegress float64) bool {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "  gate: no baseline (%v), skipping regression check\n", err)
		return true
	}
	var base report
	if err := json.Unmarshal(raw, &base); err != nil || base.Speedup <= 0 {
		fmt.Fprintf(os.Stderr, "  gate: unreadable baseline %s (%v), skipping\n", path, err)
		return true
	}
	regress := (base.Speedup - r.Speedup) / base.Speedup * 100
	if base.GoMaxProcs != r.GoMaxProcs ||
		base.Size != r.Size || base.Days != r.Days ||
		base.DayWorkers != r.DayWorkers || base.Seed != r.Seed ||
		base.Frontends != r.Frontends || base.TransportMix != r.TransportMix ||
		base.Strategy != r.Strategy {
		fmt.Fprintf(os.Stderr,
			"  gate: baseline (GOMAXPROCS=%d size=%d days=%d workers=%d seed=%d frontends=%d mix=%q strategy=%q) vs this run (GOMAXPROCS=%d size=%d days=%d workers=%d seed=%d frontends=%d mix=%q strategy=%q) — speedups not comparable (baseline %.2fx, now %.2fx), warning only\n",
			base.GoMaxProcs, base.Size, base.Days, base.DayWorkers, base.Seed,
			base.Frontends, base.TransportMix, base.Strategy,
			r.GoMaxProcs, r.Size, r.Days, r.DayWorkers, r.Seed,
			r.Frontends, r.TransportMix, r.Strategy, base.Speedup, r.Speedup)
		warnWorkloadQPS(&base, r, maxRegress)
		warnAllocBudget(&base, r)
		return true
	}
	if r.GoMaxProcs <= 1 {
		// The report's own Note field says it: on a single core the
		// speedup is scheduler noise around 1.0x, not a metric.
		fmt.Fprintf(os.Stderr,
			"  gate: single-core host — speedup is noise (baseline %.2fx, now %.2fx), warning only\n",
			base.Speedup, r.Speedup)
		warnWorkloadQPS(&base, r, maxRegress)
		warnAllocBudget(&base, r)
		return true
	}
	if regress > maxRegress {
		fmt.Fprintf(os.Stderr,
			"  gate: FAIL — speedup %.2fx regressed %.1f%% from baseline %.2fx (limit %.0f%%)\n",
			r.Speedup, regress, base.Speedup, maxRegress)
		return false
	}
	fmt.Fprintf(os.Stderr, "  gate: OK — speedup %.2fx vs baseline %.2fx (%+.1f%%, limit -%.0f%%)\n",
		r.Speedup, base.Speedup, -regress, maxRegress)
	// The hourly section gates the same way when both reports carry one
	// and their shapes match; anything else is a warning, not a failure.
	if base.HourlySpeedup > 0 && r.HourlySpeedup > 0 {
		if base.HourWorkers != r.HourWorkers || base.HourlyDays != r.HourlyDays {
			fmt.Fprintf(os.Stderr,
				"  gate: hourly shape differs (baseline workers=%d days=%d vs workers=%d days=%d), hourly speedup warning only (baseline %.2fx, now %.2fx)\n",
				base.HourWorkers, base.HourlyDays, r.HourWorkers, r.HourlyDays,
				base.HourlySpeedup, r.HourlySpeedup)
			return true
		}
		hregress := (base.HourlySpeedup - r.HourlySpeedup) / base.HourlySpeedup * 100
		if hregress > maxRegress {
			fmt.Fprintf(os.Stderr,
				"  gate: FAIL — hourly speedup %.2fx regressed %.1f%% from baseline %.2fx (limit %.0f%%)\n",
				r.HourlySpeedup, hregress, base.HourlySpeedup, maxRegress)
			return false
		}
		fmt.Fprintf(os.Stderr, "  gate: OK — hourly speedup %.2fx vs baseline %.2fx (%+.1f%%, limit -%.0f%%)\n",
			r.HourlySpeedup, base.HourlySpeedup, -hregress, maxRegress)
	}
	warnWorkloadQPS(&base, r, maxRegress)
	warnAllocBudget(&base, r)
	return true
}

// allocBudgetCached and allocBudgetUncached are the committed per-query
// allocation budgets for the warmed serving paths: a cached hit costs
// the DoH GET parameter string plus envelope bookkeeping, an uncached
// query adds the recursor traversal. Exceeding either warns — in the
// -allocbench output and in CI logs — but never fails the run.
const (
	allocBudgetCached   = 2
	allocBudgetUncached = 10
)

// measureExchangeAllocs stands up a 3-frontend DoH fleet over a fixed
// 500-domain world and measures per-exchange allocations on a warmed
// single-goroutine loop, the same discipline BenchmarkExchangeAllocs
// applies: answer reuse on, one canonical-named query message patched
// per exchange. MemStats deltas are exact for a single goroutine, so
// the result is a count, not an estimate.
func measureExchangeAllocs(withCache bool) (allocsPerQuery, bytesPerQuery float64) {
	w, err := providers.BuildWorld(providers.WorldConfig{Size: 500, Seed: 11})
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	w.Clock.Set(time.Date(2023, 9, 1, 0, 0, 0, 0, time.UTC))
	cacheCfg := transport.CacheConfig{}
	if !withCache {
		// A one-entry geometry with zero shards is still a cache; disable
		// by omitting the cache from the frontends instead.
		cacheCfg = transport.CacheConfig{Shards: 1, ShardCapacity: 1}
	}
	fl := transport.NewFleet(w.Net, w.Clock, transport.FleetConfig{
		Balance: transport.BalanceRoundRobin, Seed: 11, Cache: cacheCfg,
	})
	for i := 0; i < 3; i++ {
		ap := netip.AddrPortFrom(w.Alloc.AllocV4("DoHFrontend"), transport.ProtoDoH.Port())
		fe := fl.Add(transport.ProtoDoH, "fe", w.GoogleResolver, ap)
		if !withCache {
			fe.Cache = nil
		}
	}
	client := fl.Client
	client.SetReuseAnswers(true)
	list := w.Tranco.ListFor(w.Clock.Now())
	names := make([]string, len(list))
	for i, n := range list {
		names[i] = dnswire.CanonicalName(n)
	}
	q := dnswire.NewQuery(1, names[0], dnswire.TypeHTTPS, true)
	exchange := func(i int) {
		q.ID++
		q.Question[0].Name = names[i%len(names)]
		if _, err := client.Exchange(q); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	}
	for i := range names {
		exchange(i)
	}
	const iters = 20000
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < iters; i++ {
		exchange(i)
	}
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs-m0.Mallocs) / iters, float64(m1.TotalAlloc-m0.TotalAlloc) / iters
}

// warnAllocBudget compares the per-query allocation counts against the
// baseline report, warn-only like warnWorkloadQPS — the counts are
// deterministic, but an allocation regression should not block an
// unrelated change; it should be loud in the log and tracked in the
// report. Half an allocation of slack absorbs MemStats measurement
// noise at the section boundaries.
func warnAllocBudget(base, r *report) {
	if base.AllocsPerQueryCached <= 0 || r.AllocsPerQueryCached <= 0 {
		return
	}
	if r.AllocsPerQueryCached > base.AllocsPerQueryCached+0.5 ||
		r.AllocsPerQueryUncached > base.AllocsPerQueryUncached+0.5 {
		fmt.Fprintf(os.Stderr,
			"  gate: WARN — allocs/query regressed vs baseline (cached %.1f→%.1f, uncached %.1f→%.1f, warning only)\n",
			base.AllocsPerQueryCached, r.AllocsPerQueryCached,
			base.AllocsPerQueryUncached, r.AllocsPerQueryUncached)
		return
	}
	fmt.Fprintf(os.Stderr,
		"  gate: OK — allocs/query cached %.1f uncached %.1f (baseline %.1f/%.1f, warn-only)\n",
		r.AllocsPerQueryCached, r.AllocsPerQueryUncached,
		base.AllocsPerQueryCached, base.AllocsPerQueryUncached)
}

// warnWorkloadQPS compares the workload engine's serving-path qps
// against the baseline, warn-only by design: wall-clock queries/sec is
// host-bound (CPU generation, thermal state), so a slower machine must
// never fail the gate — the trend is tracked in the report, and a
// same-host regression prints loudly here. It runs on every gated
// invocation, campaign shape notwithstanding: the population size is
// the only shape the qps number depends on, and it is checked here.
func warnWorkloadQPS(base, r *report, maxRegress float64) {
	if base.WorkloadQPS <= 0 || r.WorkloadQPS <= 0 {
		return
	}
	if base.WorkloadClients != r.WorkloadClients {
		fmt.Fprintf(os.Stderr,
			"  gate: workload shape differs (baseline %d clients vs %d), qps not comparable\n",
			base.WorkloadClients, r.WorkloadClients)
		return
	}
	wregress := (base.WorkloadQPS - r.WorkloadQPS) / base.WorkloadQPS * 100
	if wregress > maxRegress {
		fmt.Fprintf(os.Stderr,
			"  gate: WARN — workload qps %.0f regressed %.1f%% from baseline %.0f (host-bound metric, warning only)\n",
			r.WorkloadQPS, wregress, base.WorkloadQPS)
	} else {
		fmt.Fprintf(os.Stderr, "  gate: OK — workload qps %.0f vs baseline %.0f (%+.1f%%, warn-only)\n",
			r.WorkloadQPS, base.WorkloadQPS, -wregress)
	}
}

// writeReport emits the JSON report to path ('-' for stdout).
func writeReport(r *report, out string) {
	enc, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", out)
}

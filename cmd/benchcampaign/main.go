// Command benchcampaign measures the campaign pipelining speedup: it runs
// the same multi-week daily campaign twice — serially (DayWorkers: 1) and
// pipelined (DayWorkers: N) — verifies the two runs collected identical
// datasets, and writes the timings to a JSON report (BENCH_campaign.json by
// default) so the perf trajectory is tracked commit over commit.
//
// Usage:
//
//	benchcampaign [-size N] [-days D] [-dayworkers W] [-seed S]
//	              [-out FILE] [-smoke]
//
// -smoke shrinks the campaign to a CI-friendly single-iteration size.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
)

// report is the BENCH_campaign.json layout.
type report struct {
	GeneratedAt string  `json:"generated_at"`
	GoVersion   string  `json:"go_version"`
	NumCPU      int     `json:"num_cpu"`
	GoMaxProcs  int     `json:"go_max_procs"`
	Size        int     `json:"size"`
	Seed        int64   `json:"seed"`
	Days        int     `json:"days"`
	DayWorkers  int     `json:"day_workers"`
	SerialMS    float64 `json:"serial_ms"`
	PipelinedMS float64 `json:"pipelined_ms"`
	Speedup     float64 `json:"speedup"`
	Queries     uint64  `json:"dns_queries_per_run"`
	StoresEqual bool    `json:"stores_equal"`
	// Note flags reports whose speedup is not meaningful (single-core
	// hosts: the workload is CPU-bound simulation, so pipelining cannot
	// beat serial there).
	Note string `json:"note,omitempty"`
}

func main() {
	size := flag.Int("size", 400, "Tranco list size of the generated world")
	days := flag.Int("days", 21, "campaign length in days (daily step)")
	workers := flag.Int("dayworkers", 8, "day workers for the pipelined run")
	seed := flag.Int64("seed", 7, "generation seed")
	out := flag.String("out", "BENCH_campaign.json", "report path ('-' for stdout)")
	smoke := flag.Bool("smoke", false, "CI smoke mode: tiny campaign, no timing claims")
	flag.Parse()

	if *smoke {
		*size, *days = 150, 5
	}
	// The window deliberately covers the NS-scan and connectivity-probe
	// phases so every per-day stage is exercised.
	start := time.Date(2024, 1, 25, 0, 0, 0, 0, time.UTC)
	end := start.AddDate(0, 0, *days-1)

	run := func(dayWorkers int) (time.Duration, uint64, []byte) {
		c, err := core.NewCampaign(core.CampaignConfig{
			Size: *size, Seed: *seed, Start: start, End: end, StepDays: 1,
			DayWorkers: dayWorkers,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		t0 := time.Now()
		if err := c.RunDaily(); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		elapsed := time.Since(t0)
		var buf bytes.Buffer
		if err := c.Store.WriteJSON(&buf); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return elapsed, c.World.Net.QueryCount(), buf.Bytes()
	}

	fmt.Fprintf(os.Stderr, "benchcampaign: size=%d days=%d (serial vs %d day workers)\n",
		*size, *days, *workers)
	serialDur, serialQ, serialStore := run(1)
	fmt.Fprintf(os.Stderr, "  serial:    %v (%d DNS queries)\n", serialDur.Round(time.Millisecond), serialQ)
	pipeDur, _, pipeStore := run(*workers)
	fmt.Fprintf(os.Stderr, "  pipelined: %v\n", pipeDur.Round(time.Millisecond))

	r := report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Size:        *size,
		Seed:        *seed,
		Days:        *days,
		DayWorkers:  *workers,
		SerialMS:    float64(serialDur.Microseconds()) / 1000,
		PipelinedMS: float64(pipeDur.Microseconds()) / 1000,
		Speedup:     float64(serialDur) / float64(pipeDur),
		Queries:     serialQ,
		StoresEqual: bytes.Equal(serialStore, pipeStore),
	}
	if r.GoMaxProcs <= 1 {
		r.Note = "single-core host: speedup is meaningful only with go_max_procs > 1; stores_equal is the signal here"
	}
	if !r.StoresEqual {
		fmt.Fprintln(os.Stderr, "error: pipelined store diverged from serial store")
		defer os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "  speedup:   %.2fx on %d CPUs (stores equal: %v)\n",
		r.Speedup, r.NumCPU, r.StoresEqual)

	enc, err := json.MarshalIndent(&r, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}

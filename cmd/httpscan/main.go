// Command httpscan scans domains for HTTPS resource records in a generated
// world and prints the results in RFC 9460 presentation format — the
// single-shot equivalent of the paper's daily scanner.
//
// Usage:
//
//	httpscan [-size N] [-seed S] [-date YYYY-MM-DD] [-n COUNT] [domain ...]
//
// With explicit domains, only those are scanned; otherwise the top COUNT
// domains of that day's Tranco list.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/providers"
	"repro/internal/scanner"
)

func main() {
	size := flag.Int("size", 5000, "world size")
	seed := flag.Int64("seed", 2024, "generation seed")
	dateStr := flag.String("date", "2023-09-15", "scan date (YYYY-MM-DD)")
	n := flag.Int("n", 25, "number of top-list domains to scan")
	flag.Parse()

	date, err := time.Parse("2006-01-02", *dateStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bad -date:", err)
		os.Exit(2)
	}

	w, err := providers.BuildWorld(providers.WorldConfig{Size: *size, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "building world:", err)
		os.Exit(1)
	}
	w.Clock.Set(date.Add(12 * time.Hour))
	sc := scanner.New(w.Net, w.GoogleAddr, w.CFResolverAddr, w.Whois)

	domains := flag.Args()
	if len(domains) == 0 {
		list := w.Tranco.ListFor(date)
		if *n < len(list) {
			list = list[:*n]
		}
		domains = list
	}

	for _, d := range domains {
		obs := sc.ScanDomain(d)
		if obs.Err != "" {
			fmt.Printf("%-24s ERROR %s\n", d, obs.Err)
			continue
		}
		if !obs.HasHTTPS() {
			fmt.Printf("%-24s (no HTTPS records)\n", d)
			continue
		}
		for _, rec := range obs.HTTPS {
			line := fmt.Sprintf("%-24s HTTPS %d %s", d, rec.Priority, rec.Target)
			if len(rec.ALPN) > 0 {
				line += " alpn=" + strings.Join(rec.ALPN, ",")
			}
			if rec.HasPort {
				line += fmt.Sprintf(" port=%d", rec.Port)
			}
			for _, h := range rec.V4Hints {
				line += " ipv4hint=" + h.String()
			}
			for _, h := range rec.V6Hints {
				line += " ipv6hint=" + h.String()
			}
			if rec.HasECH {
				line += fmt.Sprintf(" ech=<config %d, %s>", rec.ECHConfigID, rec.ECHPublicName)
			}
			fmt.Println(line)
		}
		flags := []string{}
		if obs.Signed {
			flags = append(flags, "RRSIG")
		}
		if obs.AD {
			flags = append(flags, "AD")
		}
		if len(flags) > 0 {
			fmt.Printf("%-24s   dnssec: %s\n", "", strings.Join(flags, "+"))
		}
	}
}

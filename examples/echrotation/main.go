// ECH rotation: reproduce the paper's §4.4.2 hourly-scan experiment
// (July 21–27, 2023) measuring how often the ECH keys advertised in HTTPS
// records rotate — Figure 4's 1.26-hour mean.
package main

import (
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
)

func main() {
	c, err := core.NewCampaign(core.CampaignConfig{Size: 2000, Seed: 3})
	if err != nil {
		panic(err)
	}
	start := time.Date(2023, 7, 21, 0, 0, 0, 0, time.UTC)
	fmt.Println("running hourly ECH scans for 7 days from", start.Format("2006-01-02"), "...")
	c.RunHourlyECH(start, 7)

	obs := c.Store.ECHObservations()
	fmt.Printf("collected %d hourly ECH observations\n\n", len(obs))

	rot := analysis.ECHRotation(c.Store)
	fmt.Println(rot.Table().Format())
	fmt.Printf("paper: 169 distinct configs over 7 days, mean duration 1.26h, all on cloudflare-ech.com\n")
}

// Raceclient: drive the transport layer's pluggable resolution
// strategies — the happy-eyeballs shape real encrypted-DNS clients
// (Firefox, Chrome, dnscrypt-proxy) actually use — against a mixed
// DoH/DoT/DoQ fleet:
//
//  1. protocol racing: the pool's top candidate gets a stagger head
//     start; when its answer misses the deadline, the next candidate on
//     a *different* protocol launches, and the earlier virtual
//     completion wins. The winner-protocol distribution shows which
//     envelopes actually answer, and the wasted-query counter prices
//     the duplicate upstream load the race pays for its latency win;
//  2. failover under fire: with every DoH frontend dark, races ride the
//     DoT/DoQ survivors without a single lost exchange;
//  3. hedged queries: strategies are a Client field, so the same fleet
//     switches to Hedge mid-run — a per-upstream latency-quantile timer
//     that fires a same-protocol duplicate when the primary lands in
//     its own tail;
//  4. traced exchanges: an obs.Tracer on the client records every hedge
//     as a span tree — the receive, the primary dial, the understudy
//     launching at the hedge timer's virtual offset, and the commit —
//     and the slowest trees are printed.
//
// Everything runs on the virtual clock: racing is simulated by
// comparing completion times, so the whole demo is deterministic for a
// seed.
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dnswire"
	"repro/internal/obs"
	"repro/internal/transport"
)

func main() {
	camp, err := core.NewCampaign(core.CampaignConfig{
		Size: 3000, Seed: 1,
		DoHFrontends:      6,
		TransportMix:      transport.Mix{DoH: 2, DoT: 1, DoQ: 1},
		TransportStrategy: transport.StrategyRace,
		RaceStagger:       5 * time.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	world, fleet := camp.World, camp.Fleet
	client := fleet.Client
	day := time.Date(2023, 9, 1, 12, 0, 0, 0, time.UTC)
	world.Clock.Set(day)
	list := world.Tranco.ListFor(day)

	fmt.Printf("fleet mix %s, strategy %s, stagger %v:\n",
		camp.Cfg.TransportMix, client.Strategy.Name(), camp.Cfg.RaceStagger)
	for i, st := range fleet.Stats() {
		fmt.Printf("  %-18s %s at %v\n", st.Name, st.Proto, fleet.Addrs[i])
	}

	// 1. Race over the mix: frontends whose synthetic RTT beats the
	// stagger win unopposed; slower primaries get raced by the next
	// candidate on another protocol.
	for _, name := range list[:400] {
		if _, err := client.Query(name, dnswire.TypeHTTPS, true); err != nil {
			panic(err)
		}
	}
	printStrategy(fleet, "after 400 raced HTTPS queries")
	fmt.Println("\npool RTTs (the race's form book):")
	for _, st := range fleet.Pool.Stats() {
		fmt.Printf("  %-18s %s rtt=%v\n", st.Name, st.Proto, st.RTT.Round(time.Microsecond))
	}

	// 2. Kill every DoH frontend: cross-protocol racing turns the
	// outage into failover without a single lost exchange.
	killed := 0
	for _, st := range fleet.Pool.Stats() {
		if st.Proto == transport.ProtoDoH {
			world.Net.SetAddrDown(st.Addr.Addr(), true)
			killed++
		}
	}
	fmt.Printf("\n%d DoH frontends marked unreachable; racing on:\n", killed)
	lost := 0
	for _, name := range list[400:800] {
		if _, err := client.Query(name, dnswire.TypeHTTPS, true); err != nil {
			lost++
		}
	}
	fmt.Printf("  400 more queries, %d lost\n", lost)
	printStrategy(fleet, "cumulative")

	// 3. Strategies are pluggable on a live client: switch the same
	// fleet to hedged queries under a tail-latency model — every 9th
	// exchange is an outlier, so the p80-armed hedge timer fires on the
	// tail and only the tail.
	for _, st := range fleet.Pool.Stats() {
		world.Net.SetAddrDown(st.Addr.Addr(), false)
	}
	client.Strategy = transport.Hedge{Quantile: 0.8}
	calls := 0
	client.Latency = func(u *transport.Upstream) time.Duration {
		calls++
		if calls%9 == 0 {
			return 30 * time.Millisecond // the tail the hedge cuts off
		}
		return 4 * time.Millisecond
	}
	// 4. Trace the hedged phase: SampleEvery 1 records every exchange;
	// hedge understudies appear as dial spans launched at the timer's
	// virtual offset, so the span tree shows the tail being cut off.
	client.Tracer = obs.NewTracer(world.Clock, obs.TraceConfig{SampleEvery: 1})
	hedgeBase := fleet.StrategyStats()
	for _, name := range list[800:1200] {
		if _, err := client.Query(name, dnswire.TypeHTTPS, true); err != nil {
			panic(err)
		}
	}
	st := fleet.StrategyStats()
	fmt.Printf("\nswitched to %s (quantile 0.8) with a 1-in-9 tail-latency model:\n", st.Strategy)
	fmt.Printf("  400 queries: %d hedges fired, %d losers cancelled, %d wasted upstream queries\n",
		st.Hedges-hedgeBase.Hedges, st.LosersCancelled-hedgeBase.LosersCancelled,
		st.Wasted-hedgeBase.Wasted)

	fmt.Printf("\nslowest traced exchanges (of %d sampled):\n", client.Tracer.Len())
	for _, tr := range client.Tracer.Slowest(3) {
		fmt.Print(tr.Tree())
	}
}

// printStrategy reports the fleet's strategy telemetry.
func printStrategy(fleet *transport.Fleet, label string) {
	st := fleet.StrategyStats()
	fmt.Printf("\nstrategy %s (%s):\n", st.Strategy, label)
	fmt.Printf("  %d exchanges, %d attempts: %d races, %d losers cancelled, %d wasted\n",
		st.Exchanges, st.Attempts, st.Races, st.LosersCancelled, st.Wasted)
	fmt.Print("  winner protocols:")
	for _, p := range []transport.Protocol{transport.ProtoDoH, transport.ProtoDoT, transport.ProtoDoQ} {
		if n, ok := st.WinsByProto[p]; ok {
			fmt.Printf("  %s=%d", p, n)
		}
	}
	fmt.Println()
}

// Recordaudit: demonstrate the §7 "automation tool" the paper calls for.
// An operator zone is seeded with every misconfiguration class the
// measurements found in the wild; the auditor reports them, the manager
// repairs what is repairable, and the audit runs again.
package main

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"repro/internal/dnswire"
	"repro/internal/ech"
	"repro/internal/manager"
	"repro/internal/svcb"
	"repro/internal/zone"
)

func main() {
	now := time.Date(2024, 2, 1, 0, 0, 0, 0, time.UTC)
	km, err := ech.NewKeyManager(rand.New(rand.NewSource(7)), "cover.example.com",
		76*time.Minute, 3*time.Hour, now.Add(-24*time.Hour))
	if err != nil {
		panic(err)
	}

	z := zone.New("example.com")
	z.SetSOA("ns1.example.com.", "hostmaster.example.com.", 1, 300)
	z.Add(dnswire.RR{Name: "example.com.", Type: dnswire.TypeA, Class: dnswire.ClassINET,
		TTL: 300, Data: &dnswire.AData{Addr: netip.MustParseAddr("192.0.2.10")}})

	// The operator moved the site to 192.0.2.10 but forgot the hint
	// (§4.3.5), kept a stale ECH key (§4.4.2), and still advertises a
	// draft protocol (§E.2).
	staleECH := km.ConfigList(now.Add(-20 * time.Hour))
	var ps svcb.Params
	_ = ps.SetALPN([]string{"h2", "h3-29"})
	_ = ps.SetIPv4Hints([]netip.Addr{netip.MustParseAddr("198.51.100.99")})
	ps.SetECH(staleECH)
	z.Add(dnswire.RR{Name: "example.com.", Type: dnswire.TypeHTTPS, Class: dnswire.ClassINET,
		TTL: 300, Data: &dnswire.SVCBData{Priority: 1, Target: ".", Params: ps}})

	auditor := &manager.Auditor{Zone: z, ECHKeys: km, Now: now}
	fmt.Println("== initial audit ==")
	for _, f := range auditor.Audit("example.com.") {
		fmt.Println(" ", f)
	}

	fmt.Println("\n== rotation policy check ==")
	policy := manager.ECHPolicy{RecordTTL: 300 * time.Second, Margin: time.Minute}
	for _, f := range policy.CheckRotation(76*time.Minute, 3*time.Hour) {
		fmt.Println(" ", f)
	}
	fmt.Println("  (rotation period 76m with 3h retention: safe for a 300s TTL)")

	fmt.Println("\n== remediation ==")
	m := &manager.Manager{Zone: z, TTL: 300}
	if changed, err := m.SyncHints("example.com."); err == nil {
		fmt.Printf("  SyncHints: changed=%v\n", changed)
	}
	if err := m.PublishECH("example.com.", km, now); err == nil {
		fmt.Println("  PublishECH: refreshed config list")
	}

	fmt.Println("\n== post-remediation audit ==")
	findings := auditor.Audit("example.com.")
	critical := 0
	for _, f := range findings {
		fmt.Println(" ", f)
		if f.Severity == manager.Critical {
			critical++
		}
	}
	if len(findings) == 0 {
		fmt.Println("  (no findings)")
	}
	fmt.Printf("\ncritical findings remaining: %d\n", critical)
}

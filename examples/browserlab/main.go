// Browserlab: walk one browser model through every §5 testbed scenario and
// print the full attempt logs — the verbose view behind Tables 6 and 7.
// Pass a browser name (Chrome, Safari, Edge, Firefox) as the argument.
package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/browser"
)

func main() {
	name := "Firefox"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	var b browser.Behavior
	for _, cand := range browser.All() {
		if strings.EqualFold(cand.Name, name) {
			b = cand
		}
	}
	if b.Name == "" {
		fmt.Fprintf(os.Stderr, "unknown browser %q (use Chrome|Safari|Edge|Firefox)\n", name)
		os.Exit(2)
	}
	fmt.Printf("=== %s %s ===\n\n", b.Name, b.Version)

	suites := []struct {
		title     string
		scenarios []browser.Scenario
	}{
		{"HTTPS RR handling (Table 6 scenarios)", browser.Table6Scenarios()},
		{"ECH handling (Table 7 scenarios)", browser.Table7Scenarios()},
		{"failover (§5.2.2)", browser.FailoverScenarios()},
	}
	for _, suite := range suites {
		fmt.Println("##", suite.title)
		for _, sc := range suite.scenarios {
			l := browser.NewLab()
			sc.Build(l)
			v := l.Visit(b, sc.URL)
			grade := sc.Classify(l, v)
			fmt.Printf("%-34s %s  %s\n", sc.Row, grade.Mark(), v)
			for i, a := range v.Attempts {
				status := "ok"
				if a.Err != "" {
					status = a.Err
				}
				fmt.Printf("    attempt %d: %s:%d sni=%s alpn=%v ech=%v/%v (%s)\n",
					i+1, a.Addr, a.Port, a.SNI, a.ALPN, a.ECHOffered, a.ECHAccepted, status)
			}
			if len(v.FollowUpQueries) > 0 {
				fmt.Printf("    follow-up DNS: %v\n", v.FollowUpQueries)
			}
		}
		fmt.Println()
	}
}

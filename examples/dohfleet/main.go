// Dohfleet: stand up a multi-frontend DoH fleet in front of the public
// recursors — the serving layer the paper's queries traverse on the real
// Internet — and demonstrate the three properties that make it a fleet:
//
//  1. load balancing: queries spread over the frontends per the pool's
//     strategy (power-of-two-choices here);
//  2. a shared sharded answer cache: a record fetched through one
//     frontend is served by every sibling without touching the recursor;
//  3. failover: with one frontend's address marked unreachable by simnet
//     failure injection, an HTTPS-record query still resolves correctly
//     through the survivors.
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dnswire"
	"repro/internal/transport"
)

func main() {
	camp, err := core.NewCampaign(core.CampaignConfig{
		Size: 3000, Seed: 1,
		DoHFrontends: 3, // doh-google-0, doh-cloudflare-1, doh-google-2
	})
	if err != nil {
		panic(err)
	}
	world := camp.World
	day := time.Date(2023, 9, 1, 12, 0, 0, 0, time.UTC)
	world.Clock.Set(day)

	// Pick an HTTPS adopter from that day's list to follow throughout.
	var target string
	for _, name := range world.Tranco.ListFor(day) {
		if d, ok := world.Domain(name); ok && d.HTTPSPublished(day, nil) && d.Proxied {
			target = name
			break
		}
	}
	fmt.Printf("fleet: %d DoH frontends, strategy %s, shared %d-shard cache\n",
		len(camp.Fleet.Frontends), camp.Fleet.Pool.Balance(), transport.DefaultShards)
	fmt.Printf("target domain: %s\n\n", target)

	// 1. Warm the fleet with a spread of queries.
	list := world.Tranco.ListFor(day)
	for _, name := range list[:200] {
		camp.Fleet.Client.Query(name, dnswire.TypeHTTPS, true)
	}
	fmt.Println("after 200 HTTPS queries:")
	for _, st := range camp.Fleet.Stats() {
		fmt.Printf("  %-18s served %3d  cache hits %3d\n", st.Name, st.Served, st.CacheHits)
	}
	cs := camp.Fleet.Cache.Stats()
	fmt.Printf("  shared cache: %d entries, hit rate %.0f%%\n\n", cs.Entries, 100*cs.HitRate())

	// 2. Shared cache: the same name through different frontends reaches
	// the recursor once.
	before := world.Net.QueryCount()
	for i := 0; i < 3; i++ {
		if _, err := camp.Fleet.Client.Query(target, dnswire.TypeHTTPS, true); err != nil {
			panic(err)
		}
	}
	fmt.Printf("3 repeat queries for %s cost %d recursor-side queries (shared cache)\n\n",
		target, world.Net.QueryCount()-before)

	// 3. Failover: kill one frontend's address and resolve again with a
	// cold cache so the answer must travel the full path.
	downAddr := camp.Fleet.Pool.Stats()[0].Addr
	world.Net.SetAddrDown(downAddr.Addr(), true)
	camp.Fleet.Cache.Flush()
	fmt.Printf("frontend %s (%v) marked unreachable, cache flushed\n",
		camp.Fleet.Frontends[0].Name, downAddr)

	// Drive fresh traffic until the pool notices: the first query routed
	// at the dead frontend records a failure and benches it.
	for _, name := range list[200:260] {
		if _, err := camp.Fleet.Client.Query(name, dnswire.TypeHTTPS, true); err != nil {
			panic(fmt.Sprintf("query for %s failed despite two healthy frontends: %v", name, err))
		}
	}
	resp, err := camp.Fleet.Client.Query(target, dnswire.TypeHTTPS, true)
	if err != nil {
		panic(fmt.Sprintf("failover resolution failed: %v", err))
	}
	for _, rr := range resp.Answer {
		if rr.Type != dnswire.TypeHTTPS {
			continue
		}
		data := rr.Data.(*dnswire.SVCBData)
		alpn, _ := data.Params.ALPN()
		_, hasECH := data.Params.ECH()
		fmt.Printf("resolved via surviving frontends: %s HTTPS prio=%d alpn=%v ech=%v ad=%v\n",
			rr.Name, data.Priority, alpn, hasECH, resp.AuthenticatedData)
	}
	fmt.Println("\npool state after failover:")
	for _, st := range camp.Fleet.Pool.Stats() {
		fmt.Printf("  %-18s queries %3d  failures %d  down=%v  rtt=%s\n",
			st.Name, st.Queries, st.Failures, st.Down, st.RTT.Round(time.Microsecond))
	}
}

// Mixedfleet: stand up one encrypted-DNS serving fleet speaking all three
// transport protocols — DoH (RFC 8484), DoT (RFC 7858), DoQ (RFC 9250) —
// in front of the public recursors, and demonstrate what makes it one
// fleet rather than three:
//
//  1. protocol mix: the campaign's TransportMix deals envelopes across
//     the frontends (2:1:1 here) and the pool routes over all of them;
//  2. a shared answer cache below the envelopes: a record fetched over
//     DoT is served from cache to a DoH stub without touching a recursor;
//  3. per-protocol transport behavior: DoT pipelines queries over a
//     persistent connection with out-of-order responses, DoQ pays a
//     handshake for its first session and rides 0-RTT resumption after;
//  4. cross-protocol failover: with the DoH and DoT frontends dark, the
//     stub transparently rides the DoQ survivor.
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dnswire"
	"repro/internal/transport"
)

func main() {
	camp, err := core.NewCampaign(core.CampaignConfig{
		Size: 3000, Seed: 1,
		DoHFrontends: 4, // doh-google-0, dot-cloudflare-1, doq-google-2, doh-cloudflare-3
		TransportMix: transport.Mix{DoH: 2, DoT: 1, DoQ: 1},
	})
	if err != nil {
		panic(err)
	}
	world, fleet := camp.World, camp.Fleet
	day := time.Date(2023, 9, 1, 12, 0, 0, 0, time.UTC)
	world.Clock.Set(day)
	list := world.Tranco.ListFor(day)

	fmt.Printf("fleet mix %s over %d frontends:\n", camp.Cfg.TransportMix, len(fleet.Frontends))
	for i, st := range fleet.Stats() {
		fmt.Printf("  %-18s %s at %v\n", st.Name, st.Proto, fleet.Addrs[i])
	}

	// 1. Spread traffic over the mix.
	for _, name := range list[:200] {
		if _, err := fleet.Client.Query(name, dnswire.TypeHTTPS, true); err != nil {
			panic(err)
		}
	}
	fmt.Println("\nafter 200 HTTPS queries, per protocol:")
	for _, p := range []transport.Protocol{transport.ProtoDoH, transport.ProtoDoT, transport.ProtoDoQ} {
		st := fleet.ProtocolStats()[p]
		fmt.Printf("  %-4s served %3d  cache hits %3d\n", p, st.Served, st.CacheHits)
	}

	// 2. The cache sits below the envelopes: fetch a name until it lands
	// on every protocol, and count recursor-side queries — one, total.
	target := list[0]
	before := world.Net.QueryCount()
	for i := 0; i < 6; i++ {
		if _, err := fleet.Client.Query(target, dnswire.TypeHTTPS, true); err != nil {
			panic(err)
		}
	}
	fmt.Printf("\n6 repeat queries for %s over the mix cost %d recursor-side queries (shared cache)\n",
		target, world.Net.QueryCount()-before)

	// 3a. DoT pipelining: write three queries in one segment over a raw
	// connection; responses come back out of order, matched by ID.
	var dotIdx int
	for i, st := range fleet.Stats() {
		if st.Proto == transport.ProtoDoT {
			dotIdx = i
		}
	}
	dot := fleet.Servers[dotIdx].(*transport.DoTServer)
	conn := dot.DialDoT(world.Net, fleet.Addrs[dotIdx])
	var burst []byte
	for i := uint16(1); i <= 3; i++ {
		wire, _ := dnswire.NewQuery(i, list[int(i)], dnswire.TypeHTTPS, true).Pack()
		burst = append(burst, transport.Frame(wire)...)
	}
	if err := conn.Write(burst); err != nil {
		panic(err)
	}
	fmt.Print("\nDoT pipelining: 3 queries in one segment, responses arrive as IDs [")
	for i := 0; i < 3; i++ {
		wire, _, err := conn.ReadResponse()
		if err != nil {
			panic(err)
		}
		fmt.Printf(" %d", uint16(wire[0])<<8|uint16(wire[1]))
	}
	fmt.Println(" ] — out of order, matched by query ID")

	// 3b. DoQ sessions: the client's first session paid a handshake; a
	// dropped session resumes with 0-RTT on the retained ticket.
	var doqIdx int
	for i, st := range fleet.Stats() {
		if st.Proto == transport.ProtoDoQ {
			doqIdx = i
		}
	}
	doq := fleet.Servers[doqIdx].(*transport.DoQServer)
	ss := doq.SessionStats()
	fmt.Printf("\nDoQ sessions: %d established (%d resumed 0-RTT), %d streams (one per query), %d resets\n",
		ss.Sessions, ss.Resumed, ss.Streams, ss.Resets)

	// 4. Cross-protocol failover: kill every non-DoQ frontend and keep
	// resolving fresh names through the survivor.
	for i, st := range fleet.Stats() {
		if st.Proto != transport.ProtoDoQ {
			world.Net.SetAddrDown(fleet.Addrs[i].Addr(), true)
		}
	}
	fmt.Println("\nDoH and DoT frontends marked unreachable; driving fresh traffic:")
	for _, name := range list[200:260] {
		if _, err := fleet.Client.Query(name, dnswire.TypeHTTPS, true); err != nil {
			panic(fmt.Sprintf("query for %s failed despite a healthy DoQ frontend: %v", name, err))
		}
	}
	st := fleet.ProtocolStats()[transport.ProtoDoQ]
	fmt.Printf("  DoQ survivor now served %d queries; pool health %d/%d\n",
		st.Served, fleet.Pool.Healthy(), fleet.Pool.Len())
	for _, ps := range fleet.Pool.Stats() {
		fmt.Printf("  %-18s %-4s queries %3d  failures %d  down=%v\n",
			ps.Name, ps.Proto, ps.Queries, ps.Failures, ps.Down)
	}
}

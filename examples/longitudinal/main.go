// Longitudinal: run a multi-month measurement campaign (the paper's §4
// daily scans, here sampled every two weeks for speed) and print the
// adoption, ECH, and DNSSEC trends — Figures 2, 13, and 5.
package main

import (
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/core"
)

func main() {
	c, err := core.NewCampaign(core.CampaignConfig{
		Size:     4000,
		Seed:     11,
		StepDays: 14,
		Progress: os.Stderr,
	})
	if err != nil {
		panic(err)
	}
	if err := c.RunDaily(); err != nil {
		panic(err)
	}

	adoption := analysis.Adoption(c.Store)
	for _, t := range adoption.Tables() {
		fmt.Println(t.Format())
	}
	first, last, delta := analysis.TrendDelta(adoption.DynamicApex)
	fmt.Printf("dynamic apex adoption: %.1f%% → %.1f%% (Δ %+.1f points, paper: 20%%→27%%)\n\n",
		first, last, delta)

	fmt.Println(analysis.ECHDeployment(c.Store, nil).Table().Format())
	for _, t := range analysis.Signed(c.Store, nil).Tables("dynamic") {
		fmt.Println(t.Format())
	}
}

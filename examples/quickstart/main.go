// Quickstart: build a small simulated Internet, scan one day of the Tranco
// list for HTTPS records through the public resolver, and summarise what
// the paper's §4.2 would see.
package main

import (
	"fmt"
	"time"

	"repro/internal/providers"
	"repro/internal/scanner"
)

func main() {
	// A 3k-domain world is enough to see every behaviour class.
	world, err := providers.BuildWorld(providers.WorldConfig{Size: 3000, Seed: 1})
	if err != nil {
		panic(err)
	}
	day := time.Date(2023, 9, 1, 12, 0, 0, 0, time.UTC)
	world.Clock.Set(day)

	sc := scanner.New(world.Net, world.GoogleAddr, world.CFResolverAddr, world.Whois)
	list := world.Tranco.ListFor(day)
	snap := sc.ScanList(day, "apex", list)

	fmt.Printf("scanned %d apex domains on %s\n", snap.Total, day.Format("2006-01-02"))
	fmt.Printf("domains with HTTPS records: %d (%.1f%%)\n",
		len(snap.Obs), 100*float64(len(snap.Obs))/float64(snap.Total))

	var ech, signed, ad, alias int
	for _, obs := range snap.Obs {
		for _, rec := range obs.HTTPS {
			if rec.HasECH {
				ech++
				break
			}
		}
		if obs.Signed {
			signed++
		}
		if obs.AD {
			ad++
		}
		if len(obs.HTTPS) > 0 && obs.HTTPS[0].AliasMode() {
			alias++
		}
	}
	fmt.Printf("  with ECH configs:   %d\n", ech)
	fmt.Printf("  with RRSIG:         %d\n", signed)
	fmt.Printf("  DNSSEC-validated:   %d\n", ad)
	fmt.Printf("  AliasMode records:  %d\n", alias)

	// Show a few records in presentation style.
	fmt.Println("\nsample records:")
	shown := 0
	for name, obs := range snap.Obs {
		if shown == 5 {
			break
		}
		for _, rec := range obs.HTTPS {
			fmt.Printf("  %s HTTPS %d %s (alpn=%v ech=%v)\n",
				name, rec.Priority, rec.Target, rec.ALPN, rec.HasECH)
			shown++
			break
		}
	}
}

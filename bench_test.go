// Package repro's root benchmark harness regenerates every table and
// figure of the paper's evaluation (see DESIGN.md §4 for the experiment
// index). The expensive part — the measurement campaign itself — runs once
// per `go test -bench` invocation in shared setup; each benchmark then
// times the analysis that produces its table/figure, and micro-benchmarks
// cover the substrate hot paths (wire codec, signing, sealing, resolution,
// scanning, browsing).
package repro

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/browser"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dnssec"
	"repro/internal/dnswire"
	"repro/internal/doh"
	"repro/internal/ech"
	"repro/internal/providers"
	"repro/internal/scanner"
	"repro/internal/svcb"
	"repro/internal/transport"
)

var (
	benchOnce sync.Once
	benchCamp *core.Campaign
	benchErr  error
)

// benchCampaign runs one shared scaled-down campaign (1.5k domains, 2-week
// sampling, hourly ECH, validation census).
func benchCampaign(b *testing.B) *core.Campaign {
	b.Helper()
	benchOnce.Do(func() {
		benchCamp, benchErr = core.NewCampaign(core.CampaignConfig{
			Size: 1500, Seed: 42, StepDays: 14,
		})
		if benchErr != nil {
			return
		}
		if benchErr = benchCamp.RunDaily(); benchErr != nil {
			return
		}
		benchCamp.RunHourlyECH(time.Date(2023, 7, 21, 0, 0, 0, 0, time.UTC), 2)
		benchCamp.RunValidationCensus(time.Date(2024, 1, 2, 0, 0, 0, 0, time.UTC))
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchCamp
}

func benchStore(b *testing.B) *dataset.Store { return benchCampaign(b).Store }

// --- E1: Fig 2 ---

func BenchmarkFig2AdoptionRates(b *testing.B) {
	st := benchStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := analysis.Adoption(st)
		if len(res.DynamicApex.Points) == 0 {
			b.Fatal("empty result")
		}
	}
}

// --- E2: Table 2 ---

func BenchmarkTable2NSCategories(b *testing.B) {
	st := benchStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if analysis.NSCategories(st, nil).Days == 0 {
			b.Fatal("empty result")
		}
	}
}

// --- E3: Table 3 + Fig 3 ---

func BenchmarkTable3NonCloudflare(b *testing.B) {
	st := benchStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if analysis.NonCFProviders(st, nil).DistinctTotal == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFig3ProviderTrend(b *testing.B) {
	st := benchStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := analysis.NonCFProviders(st, nil)
		if len(res.DailyDistinct.Points) == 0 {
			b.Fatal("empty series")
		}
	}
}

// --- E4: §4.2.3 ---

func BenchmarkIntermittencyAnalysis(b *testing.B) {
	st := benchStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = analysis.Intermittency(st)
	}
}

// --- E5: Table 4 ---

func BenchmarkTable4DefaultVsCustom(b *testing.B) {
	st := benchStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if analysis.DefaultVsCustom(st, nil).Days == 0 {
			b.Fatal("empty result")
		}
	}
}

// --- E6: Table 5 ---

func BenchmarkTable5ProviderParams(b *testing.B) {
	st := benchStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		google := analysis.ProviderParams(st, "Google")
		godaddy := analysis.ProviderParams(st, "GoDaddy")
		_ = analysis.Table5(google, godaddy)
	}
}

// --- E7: §4.3.3 ---

func BenchmarkSvcPriorityTargetName(b *testing.B) {
	st := benchStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if analysis.SvcParams(st, "apex").ServiceModePct == 0 {
			b.Fatal("empty result")
		}
	}
}

// --- E8: Table 8 ---

func BenchmarkTable8ALPN(b *testing.B) {
	st := benchStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := analysis.ALPN(st, "apex", nil, providers.H3Draft29SunsetDate)
		if len(res.Share) == 0 {
			b.Fatal("empty result")
		}
	}
}

// --- E9: Fig 11 ---

func BenchmarkFig11IPHints(b *testing.B) {
	st := benchStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := analysis.HintUsage(st, "apex")
		if len(res.V4Usage.Points) == 0 {
			b.Fatal("empty result")
		}
	}
}

// --- E10: Fig 12 + connectivity ---

func BenchmarkFig12MismatchDuration(b *testing.B) {
	st := benchStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = analysis.MismatchDurations(st, "apex")
	}
}

func BenchmarkIPHintConnectivity(b *testing.B) {
	st := benchStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = analysis.Connectivity(st)
	}
}

// --- E11: Fig 13 ---

func BenchmarkFig13ECHDeployment(b *testing.B) {
	st := benchStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := analysis.ECHDeployment(st, nil)
		if len(res.Apex.Points) == 0 {
			b.Fatal("empty result")
		}
	}
}

// --- E12: Fig 4 ---

func BenchmarkFig4ECHRotation(b *testing.B) {
	st := benchStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := analysis.ECHRotation(st)
		if res.DistinctConfigs == 0 {
			b.Fatal("empty result")
		}
	}
}

// --- E13: Fig 5 ---

func BenchmarkFig5SignedValidated(b *testing.B) {
	st := benchStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := analysis.Signed(st, nil)
		if len(res.SignedApex.Points) == 0 {
			b.Fatal("empty result")
		}
	}
}

// --- E14: Table 9 ---

func BenchmarkTable9DNSSECValidation(b *testing.B) {
	st := benchStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := analysis.Census(st)
		if res.WithHTTPS.Signed == 0 {
			b.Fatal("empty census")
		}
	}
}

// --- E15: Fig 14 ---

func BenchmarkFig14SignedECH(b *testing.B) {
	st := benchStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := analysis.SignedECH(st, nil)
		if len(res.SignedPct.Points) == 0 {
			b.Fatal("empty result")
		}
	}
}

// --- E16/E17/E18: Tables 6, 7 and the failover matrix ---

func BenchmarkTable6BrowserMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, marks := browser.RunMatrix("Table 6", browser.Table6Scenarios(), browser.All())
		if len(marks) == 0 {
			b.Fatal("empty matrix")
		}
	}
}

func BenchmarkTable7ECHMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, marks := browser.RunMatrix("Table 7", browser.Table7Scenarios(), browser.All())
		if len(marks) == 0 {
			b.Fatal("empty matrix")
		}
	}
}

func BenchmarkFailoverBehaviour(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, marks := browser.RunMatrix("failover", browser.FailoverScenarios(), browser.All())
		if len(marks) == 0 {
			b.Fatal("empty matrix")
		}
	}
}

// --- E20: Fig 8/9 ---

func BenchmarkFig8Rankings(b *testing.B) {
	st := benchStore(b)
	phase1, _ := analysis.OverlappingSets(st)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats := analysis.RankDistributions(st, phase1)
		if len(stats) != 2 {
			b.Fatal("bad result")
		}
	}
}

// --- campaign pipelining ---

// benchmarkCampaignDays times a multi-week daily campaign (NS scans and
// connectivity probes included) at the given day-worker count. World
// construction runs off the clock; only RunDaily is measured.
func benchmarkCampaignDays(b *testing.B, workers int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c, err := core.NewCampaign(core.CampaignConfig{
			Size: 300, Seed: 7,
			Start:      time.Date(2024, 1, 25, 0, 0, 0, 0, time.UTC),
			End:        time.Date(2024, 2, 14, 0, 0, 0, 0, time.UTC),
			StepDays:   1,
			DayWorkers: workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := c.RunDaily(); err != nil {
			b.Fatal(err)
		}
		if len(c.Store.Days("apex")) != 21 {
			b.Fatal("incomplete campaign")
		}
	}
}

// BenchmarkCampaignSerialVsPipelined compares the serial day walk against
// the pipelined scheduler (8 concurrent per-day scan contexts). The two
// variants produce byte-identical stores (see core.TestPipelinedMatchesSerial);
// the wall-clock ratio is the pipelining speedup on this host and scales
// with available cores. `make bench` records it in BENCH_campaign.json.
func BenchmarkCampaignSerialVsPipelined(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchmarkCampaignDays(b, 1) })
	b.Run("dayworkers8", func(b *testing.B) { benchmarkCampaignDays(b, 8) })
}

// --- substrate micro-benchmarks ---

func BenchmarkScanDay(b *testing.B) {
	w, err := providers.BuildWorld(providers.WorldConfig{Size: 1000, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	sc := scanner.New(w.Net, w.GoogleAddr, w.CFResolverAddr, w.Whois)
	day := time.Date(2023, 9, 1, 0, 0, 0, 0, time.UTC)
	list := w.Tranco.ListFor(day)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Clock.Set(day.Add(time.Duration(i) * 24 * time.Hour))
		snap := sc.ScanList(day, "apex", list)
		if snap.Total != len(list) {
			b.Fatal("bad snapshot")
		}
	}
}

func BenchmarkResolveHTTPS(b *testing.B) {
	w, err := providers.BuildWorld(providers.WorldConfig{Size: 500, Seed: 10})
	if err != nil {
		b.Fatal(err)
	}
	w.Clock.Set(time.Date(2023, 9, 1, 0, 0, 0, 0, time.UTC))
	list := w.Tranco.ListFor(w.Clock.Now())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := list[i%len(list)]
		if _, err := w.GoogleResolver.Resolve(name, dnswire.TypeHTTPS); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDNSWirePackUnpack(b *testing.B) {
	var params svcb.Params
	_ = params.SetALPN([]string{"h2", "h3"})
	_ = params.SetIPv4Hints([]netip.Addr{netip.MustParseAddr("104.16.132.229")})
	m := dnswire.NewQuery(1, "example.com", dnswire.TypeHTTPS, true)
	m.Response = true
	m.Answer = []dnswire.RR{{
		Name: "example.com.", Type: dnswire.TypeHTTPS, Class: dnswire.ClassINET, TTL: 300,
		Data: &dnswire.SVCBData{Priority: 1, Target: ".", Params: params},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire, err := m.Pack()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dnswire.Unpack(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkECHSealOpen(b *testing.B) {
	kp, err := ech.GenerateKeyPair(rand.New(rand.NewSource(1)), 1, "cover.example")
	if err != nil {
		b.Fatal(err)
	}
	payload := []byte("inner client hello sni=secret.example alpn=h2")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc, ct, err := ech.Seal(nil, kp.Config, nil, payload)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := kp.Open(enc, nil, ct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRRSIGSignVerify(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	key, err := dnssec.GenerateKey(rng, "example.com.", false)
	if err != nil {
		b.Fatal(err)
	}
	rrs := []dnswire.RR{{
		Name: "example.com.", Type: dnswire.TypeHTTPS, Class: dnswire.ClassINET, TTL: 300,
		Data: &dnswire.SVCBData{Priority: 1, Target: "."},
	}}
	now := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sig, err := dnssec.SignRRset(rng, key, rrs, now.Add(-time.Hour), now.Add(time.Hour))
		if err != nil {
			b.Fatal(err)
		}
		if err := dnssec.VerifyRRSIG(sig, rrs, key.DNSKEY(3600), now); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBrowserNavigate(b *testing.B) {
	scenarios := browser.Table6Scenarios()
	l := browser.NewLab()
	scenarios[2].Build(l)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := l.Visit(browser.Chrome(), "https://a.com")
		if !v.OK {
			b.Fatal("visit failed")
		}
	}
}

func BenchmarkWorldBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := providers.BuildWorld(providers.WorldConfig{Size: 1000, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- encrypted-DNS serving layer ---

// transportBench builds a small world fronted by an encrypted-DNS fleet
// of three frontends speaking the given protocols (cycled). withCache
// selects whether the frontends share the sharded answer cache.
func transportBench(b *testing.B, withCache bool, protos ...transport.Protocol) (*transport.Client, []string, *providers.World) {
	b.Helper()
	w, err := providers.BuildWorld(providers.WorldConfig{Size: 500, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	w.Clock.Set(time.Date(2023, 9, 1, 0, 0, 0, 0, time.UTC))
	cacheCfg := transport.CacheConfig{}
	if !withCache {
		// A one-entry geometry with zero shards is still a cache; disable
		// by omitting the cache from the frontends instead.
		cacheCfg = transport.CacheConfig{Shards: 1, ShardCapacity: 1}
	}
	fl := transport.NewFleet(w.Net, w.Clock, transport.FleetConfig{
		Balance: transport.BalanceRoundRobin, Seed: 11, Cache: cacheCfg,
	})
	if len(protos) == 0 {
		protos = []transport.Protocol{transport.ProtoDoH}
	}
	for i := 0; i < 3; i++ {
		p := protos[i%len(protos)]
		ap := netip.AddrPortFrom(w.Alloc.AllocV4("DoHFrontend"), p.Port())
		fe := fl.Add(p, "fe", w.GoogleResolver, ap)
		if !withCache {
			fe.Cache = nil
		}
	}
	return fl.Client, w.Tranco.ListFor(w.Clock.Now()), w
}

// BenchmarkDoHCachedPath measures the fleet's hot path: every query after
// the warm-up is answered from the shared sharded cache.
func BenchmarkDoHCachedPath(b *testing.B) {
	client, list, _ := transportBench(b, true)
	for _, name := range list {
		if _, err := client.Query(name, dnswire.TypeHTTPS, true); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Query(list[i%len(list)], dnswire.TypeHTTPS, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransportPath measures the cached hot path per envelope: the
// same fleet shape and warm shared cache, exchanged over each protocol —
// the per-protocol performance comparison the transport subsystem was
// built to enable. DoH pays envelope base64/pack, DoT frame assembly and
// ID demux on a persistent connection, DoQ a fresh stream per query.
func BenchmarkTransportPath(b *testing.B) {
	for _, proto := range []transport.Protocol{transport.ProtoDoH, transport.ProtoDoT, transport.ProtoDoQ} {
		b.Run(proto.String(), func(b *testing.B) {
			client, list, _ := transportBench(b, true, proto)
			for _, name := range list {
				if _, err := client.Query(name, dnswire.TypeHTTPS, true); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := client.Query(list[i%len(list)], dnswire.TypeHTTPS, true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTransportStrategy measures the resolution-strategy dispatch
// cost on the cached hot path over a mixed DoH/DoT/DoQ fleet: serial
// failover (one dial per exchange), happy-eyeballs racing (a second
// cross-protocol dial whenever the primary misses the stagger), and
// hedged queries (a quantile check per exchange, duplicate dials only on
// tail latencies). The latency model is synthetic so strategy decisions
// are deterministic and the numbers compare strategy overhead, not host
// scheduling.
func BenchmarkTransportStrategy(b *testing.B) {
	for _, kind := range []transport.StrategyKind{
		transport.StrategySerial, transport.StrategyRace, transport.StrategyHedge,
	} {
		b.Run(kind.String(), func(b *testing.B) {
			client, list, _ := transportBench(b, true,
				transport.ProtoDoH, transport.ProtoDoT, transport.ProtoDoQ)
			client.Strategy = transport.StrategyConfig{Kind: kind}.New()
			client.Latency = transport.SyntheticLatency(2*time.Millisecond, 18*time.Millisecond)
			for _, name := range list {
				if _, err := client.Query(name, dnswire.TypeHTTPS, true); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := client.Query(list[i%len(list)], dnswire.TypeHTTPS, true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// exchangeAllocsLoop drives the alloc-budget benchmark body: answer
// recycling on, one query message reused with ID/QNAME patched per
// exchange — the same discipline the workload engine applies — so the
// numbers isolate the serving path's own allocations.
func exchangeAllocsLoop(b *testing.B, client *transport.Client, list []string) {
	b.Helper()
	client.SetReuseAnswers(true)
	// Patch canonical FQDNs into the reused query — NewQuery canonicalises
	// its name argument, so patching Question[0].Name directly must keep
	// that invariant (and a non-canonical name would charge the loop a
	// normalisation allocation that real steady-state callers never pay).
	names := make([]string, len(list))
	for i, n := range list {
		names[i] = dnswire.CanonicalName(n)
	}
	q := dnswire.NewQuery(1, names[0], dnswire.TypeHTTPS, true)
	for _, name := range names {
		q.ID++
		q.Question[0].Name = name
		if _, err := client.Exchange(q); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.ID++
		q.Question[0].Name = names[i%len(names)]
		if _, err := client.Exchange(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExchangeAllocs pins the exchange hot path's allocation budget
// under the reuse APIs: cached (shared-cache hit, the steady state),
// stale (RFC 8767 serve-stale with a dead recursor), and uncached (full
// envelope decode + recursor traversal per query). CI runs it as a
// warn-only gate against the committed budget; benchcampaign records the
// same three numbers into BENCH_campaign.json.
func BenchmarkExchangeAllocs(b *testing.B) {
	b.Run("cached", func(b *testing.B) {
		client, list, _ := transportBench(b, true)
		exchangeAllocsLoop(b, client, list)
	})
	b.Run("stale", func(b *testing.B) {
		w, err := providers.BuildWorld(providers.WorldConfig{Size: 500, Seed: 11})
		if err != nil {
			b.Fatal(err)
		}
		w.Clock.Set(time.Date(2023, 9, 1, 0, 0, 0, 0, time.UTC))
		fl := transport.NewFleet(w.Net, w.Clock, transport.FleetConfig{
			Balance: transport.BalanceRoundRobin, Seed: 11,
			Cache: transport.CacheConfig{StaleWindow: 24 * time.Hour},
		})
		for i := 0; i < 3; i++ {
			ap := netip.AddrPortFrom(w.Alloc.AllocV4("DoHFrontend"), 443)
			fl.Add(transport.ProtoDoH, "fe", w.GoogleResolver, ap)
		}
		client := fl.Client
		list := w.Tranco.ListFor(w.Clock.Now())
		for _, name := range list {
			if _, err := client.Query(name, dnswire.TypeHTTPS, true); err != nil {
				b.Fatal(err)
			}
		}
		// Expire everything, kill the recursor: all answers are now stale.
		w.Clock.Advance(301 * time.Second)
		for _, fe := range fl.Frontends {
			fe.Handler = deadHandler{}
		}
		exchangeAllocsLoop(b, client, list)
	})
	b.Run("uncached", func(b *testing.B) {
		client, list, _ := transportBench(b, false)
		exchangeAllocsLoop(b, client, list)
	})
}

// BenchmarkDoHUncachedPath measures the same exchanges with the answer
// cache disabled: every query pays envelope decode + recursor traversal.
func BenchmarkDoHUncachedPath(b *testing.B) {
	client, list, _ := transportBench(b, false)
	for _, name := range list {
		if _, err := client.Query(name, dnswire.TypeHTTPS, true); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Query(list[i%len(list)], dnswire.TypeHTTPS, true); err != nil {
			b.Fatal(err)
		}
	}
}

// deadHandler models a dead recursive fleet: every query hard-fails, the
// way simnet reports an unreachable upstream.
type deadHandler struct{}

func (deadHandler) HandleDNS(*dnswire.Message) *dnswire.Message { return nil }

// BenchmarkDoHStalePath measures the RFC 8767 serve-stale hot path: every
// entry is past TTL, the recursor is dead, and each query is answered by
// the stale-body copy + TTL-cap rewrite.
func BenchmarkDoHStalePath(b *testing.B) {
	w, err := providers.BuildWorld(providers.WorldConfig{Size: 500, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	w.Clock.Set(time.Date(2023, 9, 1, 0, 0, 0, 0, time.UTC))
	fl := transport.NewFleet(w.Net, w.Clock, transport.FleetConfig{
		Balance: transport.BalanceRoundRobin, Seed: 11,
		Cache: transport.CacheConfig{StaleWindow: 24 * time.Hour},
	})
	for i := 0; i < 3; i++ {
		ap := netip.AddrPortFrom(w.Alloc.AllocV4("DoHFrontend"), 443)
		fl.Add(transport.ProtoDoH, "fe", w.GoogleResolver, ap)
	}
	client := fl.Client
	list := w.Tranco.ListFor(w.Clock.Now())
	for _, name := range list {
		if _, err := client.Query(name, dnswire.TypeHTTPS, true); err != nil {
			b.Fatal(err)
		}
	}
	// Expire everything, kill the recursor: all answers are now stale.
	w.Clock.Advance(301 * time.Second)
	for _, fe := range fl.Frontends {
		fe.Handler = deadHandler{}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Query(list[i%len(list)], dnswire.TypeHTTPS, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDoHNegativePath measures RFC 2308 negative-cache absorption:
// a miss storm on NXDOMAIN names served from fresh negative entries.
func BenchmarkDoHNegativePath(b *testing.B) {
	clock := time.Date(2023, 9, 1, 0, 0, 0, 0, time.UTC)
	w, err := providers.BuildWorld(providers.WorldConfig{Size: 300, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	w.Clock.Set(clock)
	fl := transport.NewFleet(w.Net, w.Clock, transport.FleetConfig{
		Balance: transport.BalanceRoundRobin, Seed: 11,
	})
	cache := fl.Cache
	ap := netip.AddrPortFrom(w.Alloc.AllocV4("DoHFrontend"), 443)
	fl.Add(transport.ProtoDoH, "fe", w.GoogleResolver, ap)
	client := fl.Client
	// Names under a real TLD that resolve to NXDOMAIN with an SOA.
	names := make([]string, 64)
	for i := range names {
		names[i] = fmt.Sprintf("bench-nx-%d.com", i)
	}
	for _, name := range names {
		if _, err := client.Query(name, dnswire.TypeA, false); err != nil {
			b.Fatal(err)
		}
	}
	if st := cache.Stats(); st.NegativeEntries == 0 {
		b.Fatalf("no negative entries cached (stats %+v)", st)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Query(names[i%len(names)], dnswire.TypeA, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDoHEnvelopeRoundTrip isolates the RFC 8484 envelope codec.
func BenchmarkDoHEnvelopeRoundTrip(b *testing.B) {
	q := dnswire.NewQuery(7, "example.com", dnswire.TypeHTTPS, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req, err := doh.NewGETRequest(q)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := doh.DecodeRequest(req); err != nil {
			b.Fatal(err)
		}
	}
}
